//! The job representative (paper §2.1): "when a user wishes to run a
//! parallel application he contacts the masterd using a third program
//! called the job representative, jobrep, which negotiates the loading of
//! the application with the masterd."
//!
//! This module provides the negotiation queue: submissions that do not fit
//! the gang matrix wait in FIFO order and are admitted as earlier jobs
//! finish and free their slots.

use std::collections::VecDeque;

use crate::job::JobSpec;
use crate::masterd::{Masterd, Submitted};
use crate::matrix::PlaceError;

/// Running counters for the submission queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobRepStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs admitted into the matrix.
    pub admitted: u64,
    /// Jobs rejected outright (would never fit).
    pub rejected: u64,
}

/// The jobrep's FIFO negotiation queue.
#[derive(Debug, Clone, Default)]
pub struct JobRep {
    waiting: VecDeque<JobSpec>,
    /// Counters.
    pub stats: JobRepStats,
}

impl JobRep {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jobs waiting for space.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Submit a job: admitted immediately if the matrix has room, queued
    /// otherwise. Returns `Ok(Some(..))` on immediate admission,
    /// `Ok(None)` if queued, `Err` if the job can never fit.
    pub fn submit(
        &mut self,
        master: &mut Masterd,
        spec: JobSpec,
    ) -> Result<Option<Submitted>, PlaceError> {
        self.stats.submitted += 1;
        if spec.nprocs == 0 || spec.nprocs > master.matrix().nodes() {
            self.stats.rejected += 1;
            return Err(PlaceError::TooLarge);
        }
        // FIFO fairness: if others are already waiting, go behind them.
        if !self.waiting.is_empty() {
            self.waiting.push_back(spec);
            return Ok(None);
        }
        match master.submit(spec.clone()) {
            Ok(sub) => {
                self.stats.admitted += 1;
                Ok(Some(sub))
            }
            Err(PlaceError::NoSlot) | Err(PlaceError::PinnedBusy) => {
                self.waiting.push_back(spec);
                Ok(None)
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Try to admit queued jobs (call when a job finishes and frees
    /// matrix space). Admits the FIFO head repeatedly until it no longer
    /// fits; returns the admissions made.
    pub fn drain(&mut self, master: &mut Masterd) -> Vec<Submitted> {
        let mut out = Vec::new();
        while let Some(spec) = self.waiting.front() {
            match master.submit(spec.clone()) {
                Ok(sub) => {
                    self.waiting.pop_front();
                    self.stats.admitted += 1;
                    out.push(sub);
                }
                Err(PlaceError::NoSlot) | Err(PlaceError::PinnedBusy) => break,
                Err(_) => {
                    // Head became invalid (e.g. duplicate): drop it.
                    self.waiting.pop_front();
                    self.stats.rejected += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    #[test]
    fn immediate_admission_when_space() {
        let mut m = Masterd::new(4, 1);
        let mut jr = JobRep::new();
        let sub = jr.submit(&mut m, JobSpec::sized("a", 4)).unwrap();
        assert!(sub.is_some());
        assert_eq!(jr.waiting(), 0);
        assert_eq!(jr.stats.admitted, 1);
    }

    #[test]
    fn queueing_when_matrix_full_then_admission_on_finish() {
        let mut m = Masterd::new(2, 1);
        let mut jr = JobRep::new();
        let first = jr.submit(&mut m, JobSpec::sized("a", 2)).unwrap().unwrap();
        // Matrix full: second waits.
        assert!(jr.submit(&mut m, JobSpec::sized("b", 2)).unwrap().is_none());
        assert_eq!(jr.waiting(), 1);
        assert!(jr.drain(&mut m).is_empty());
        // First job finishes → space frees → b admitted.
        m.on_job_finished(first.job, first.placement.nodes[0]);
        m.on_job_finished(first.job, first.placement.nodes[1]);
        let admitted = jr.drain(&mut m);
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].job, JobId(2));
        assert_eq!(jr.waiting(), 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut m = Masterd::new(2, 1);
        let mut jr = JobRep::new();
        let a = jr.submit(&mut m, JobSpec::sized("a", 2)).unwrap().unwrap();
        jr.submit(&mut m, JobSpec::sized("b", 2)).unwrap();
        // c submits while b waits: it must queue behind b even though it
        // also wouldn't fit.
        jr.submit(&mut m, JobSpec::sized("c", 1)).unwrap();
        assert_eq!(jr.waiting(), 2);
        m.on_job_finished(a.job, a.placement.nodes[0]);
        m.on_job_finished(a.job, a.placement.nodes[1]);
        let admitted = jr.drain(&mut m);
        // Both fit now (b takes the slot's two nodes? no: 2-node matrix,
        // 1 slot — b takes both nodes, c must wait again).
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].placement.nodes.len(), 2);
        assert_eq!(jr.waiting(), 1);
    }

    #[test]
    fn oversized_jobs_are_rejected_not_queued() {
        let mut m = Masterd::new(2, 1);
        let mut jr = JobRep::new();
        let res = jr.submit(&mut m, JobSpec::sized("huge", 5));
        assert!(matches!(res, Err(PlaceError::TooLarge)));
        assert_eq!(jr.waiting(), 0);
        assert_eq!(jr.stats.rejected, 1);
    }
}
