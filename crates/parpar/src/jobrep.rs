//! The job representative (paper §2.1): "when a user wishes to run a
//! parallel application he contacts the masterd using a third program
//! called the job representative, jobrep, which negotiates the loading of
//! the application with the masterd."
//!
//! This module provides the negotiation queue: submissions that do not fit
//! the gang matrix wait per priority class — higher classes are served
//! first, FIFO within a class — and are admitted as earlier jobs finish
//! and free their slots. Every queued submission gets a monotonically
//! increasing *ticket* so the caller can associate side state (programs,
//! submit timestamps) without depending on queue positions.

use std::collections::{BTreeMap, VecDeque};

use crate::job::JobSpec;
use crate::masterd::{Masterd, Submitted};
use crate::matrix::PlaceError;

/// Running counters for the submission queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobRepStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs admitted into the matrix.
    pub admitted: u64,
    /// Jobs rejected outright (would never fit).
    pub rejected: u64,
}

/// Outcome of a successful [`JobRep::submit`].
#[derive(Debug, Clone)]
pub enum Admission {
    /// The matrix had room: the job is placed now.
    Admitted(Submitted),
    /// No room (or an equal/higher-class job is already waiting): the job
    /// holds this ticket in its class queue.
    Queued(u64),
}

/// What a [`JobRep::drain`] pass did.
#[derive(Debug, Clone, Default)]
pub struct Drained {
    /// Admissions made, in admission order.
    pub admitted: Vec<(u64, Submitted)>,
    /// Tickets of queued heads that turned out to be invalid and were
    /// dropped (counted as rejected).
    pub dropped: Vec<u64>,
}

/// The jobrep's priority-class negotiation queue.
#[derive(Debug, Clone, Default)]
pub struct JobRep {
    /// Waiting submissions per class; iterated highest class first.
    classes: BTreeMap<u8, VecDeque<(u64, JobSpec)>>,
    next_ticket: u64,
    /// Counters.
    pub stats: JobRepStats,
}

impl JobRep {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jobs waiting for space, across all classes.
    pub fn waiting(&self) -> usize {
        self.classes.values().map(VecDeque::len).sum()
    }

    /// True if some waiter has class `>= priority` (and would therefore
    /// be served before a new submission of that class).
    fn blocked_by_waiter(&self, priority: u8) -> bool {
        self.classes.range(priority..).any(|(_, q)| !q.is_empty())
    }

    fn enqueue(&mut self, spec: JobSpec) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.classes
            .entry(spec.priority)
            .or_default()
            .push_back((ticket, spec));
        ticket
    }

    /// Submit a job: admitted immediately if the matrix has room and no
    /// equal-or-higher-class job is waiting, queued otherwise. `Err` if
    /// the job can never fit.
    pub fn submit(&mut self, master: &mut Masterd, spec: JobSpec) -> Result<Admission, PlaceError> {
        self.stats.submitted += 1;
        if spec.nprocs == 0 || spec.nprocs > master.matrix().nodes() {
            self.stats.rejected += 1;
            return Err(PlaceError::TooLarge);
        }
        // Fairness: earlier waiters of my class or above go first.
        if self.blocked_by_waiter(spec.priority) {
            return Ok(Admission::Queued(self.enqueue(spec)));
        }
        match master.submit(spec.clone()) {
            Ok(sub) => {
                self.stats.admitted += 1;
                Ok(Admission::Admitted(sub))
            }
            Err(PlaceError::NoSlot) | Err(PlaceError::PinnedBusy) => {
                Ok(Admission::Queued(self.enqueue(spec)))
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Try to admit queued jobs (call when a job finishes and frees
    /// matrix space). Serves classes highest first, FIFO within a class,
    /// admitting the head repeatedly until it no longer fits; a head that
    /// does not fit stops the pass (no backfill from lower classes —
    /// strict priority, no starvation of wide jobs by narrow ones).
    pub fn drain(&mut self, master: &mut Masterd) -> Drained {
        let mut out = Drained::default();
        'pass: while let Some((&class, _)) = self.classes.iter().rev().find(|(_, q)| !q.is_empty())
        {
            let queue = self.classes.get_mut(&class).expect("class exists");
            while let Some((ticket, spec)) = queue.front() {
                let (ticket, spec) = (*ticket, spec.clone());
                match master.submit(spec) {
                    Ok(sub) => {
                        queue.pop_front();
                        self.stats.admitted += 1;
                        out.admitted.push((ticket, sub));
                    }
                    Err(PlaceError::NoSlot) | Err(PlaceError::PinnedBusy) => break 'pass,
                    Err(_) => {
                        // Head became invalid (e.g. duplicate): drop it.
                        queue.pop_front();
                        self.stats.rejected += 1;
                        out.dropped.push(ticket);
                    }
                }
            }
            if self.classes.get(&class).is_none_or(VecDeque::is_empty) {
                self.classes.remove(&class);
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    fn finish(m: &mut Masterd, sub: &Submitted) {
        for &n in &sub.placement.nodes.clone() {
            m.on_job_finished(sub.job, n);
        }
    }

    fn admitted(a: Result<Admission, PlaceError>) -> Submitted {
        match a.unwrap() {
            Admission::Admitted(sub) => sub,
            Admission::Queued(t) => panic!("queued (ticket {t}), expected admission"),
        }
    }

    fn queued(a: Result<Admission, PlaceError>) -> u64 {
        match a.unwrap() {
            Admission::Queued(t) => t,
            Admission::Admitted(sub) => panic!("admitted {:?}, expected queued", sub.job),
        }
    }

    #[test]
    fn immediate_admission_when_space() {
        let mut m = Masterd::new(4, 1);
        let mut jr = JobRep::new();
        admitted(jr.submit(&mut m, JobSpec::sized("a", 4)));
        assert_eq!(jr.waiting(), 0);
        assert_eq!(jr.stats.admitted, 1);
    }

    #[test]
    fn queueing_when_matrix_full_then_admission_on_finish() {
        let mut m = Masterd::new(2, 1);
        let mut jr = JobRep::new();
        let first = admitted(jr.submit(&mut m, JobSpec::sized("a", 2)));
        // Matrix full: second waits.
        let t = queued(jr.submit(&mut m, JobSpec::sized("b", 2)));
        assert_eq!(jr.waiting(), 1);
        assert!(jr.drain(&mut m).admitted.is_empty());
        // First job finishes → space frees → b admitted.
        finish(&mut m, &first);
        let d = jr.drain(&mut m);
        assert_eq!(d.admitted.len(), 1);
        assert_eq!(d.admitted[0].0, t);
        assert_eq!(d.admitted[0].1.job, JobId(2));
        assert_eq!(jr.waiting(), 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut m = Masterd::new(2, 1);
        let mut jr = JobRep::new();
        let a = admitted(jr.submit(&mut m, JobSpec::sized("a", 2)));
        queued(jr.submit(&mut m, JobSpec::sized("b", 2)));
        // c submits while b waits: it must queue behind b even though it
        // also wouldn't fit.
        queued(jr.submit(&mut m, JobSpec::sized("c", 1)));
        assert_eq!(jr.waiting(), 2);
        finish(&mut m, &a);
        let d = jr.drain(&mut m);
        // Both fit now (b takes the slot's two nodes? no: 2-node matrix,
        // 1 slot — b takes both nodes, c must wait again).
        assert_eq!(d.admitted.len(), 1);
        assert_eq!(d.admitted[0].1.placement.nodes.len(), 2);
        assert_eq!(jr.waiting(), 1);
    }

    #[test]
    fn oversized_jobs_are_rejected_not_queued() {
        let mut m = Masterd::new(2, 1);
        let mut jr = JobRep::new();
        let res = jr.submit(&mut m, JobSpec::sized("huge", 5));
        assert!(matches!(res, Err(PlaceError::TooLarge)));
        assert_eq!(jr.waiting(), 0);
        assert_eq!(jr.stats.rejected, 1);
    }

    #[test]
    fn higher_class_served_first_fifo_within_class() {
        let mut m = Masterd::new(2, 1);
        let mut jr = JobRep::new();
        let a = admitted(jr.submit(&mut m, JobSpec::sized("a", 2)));
        let lo1 = queued(jr.submit(&mut m, JobSpec::sized("lo1", 2)));
        let hi1 = queued(jr.submit(&mut m, JobSpec::sized("hi1", 2).with_priority(2)));
        let hi2 = queued(jr.submit(&mut m, JobSpec::sized("hi2", 2).with_priority(2)));
        let lo2 = queued(jr.submit(&mut m, JobSpec::sized("lo2", 2)));
        let mut order = Vec::new();
        let mut running = a;
        while jr.waiting() > 0 {
            finish(&mut m, &running);
            let d = jr.drain(&mut m);
            assert_eq!(d.admitted.len(), 1, "one 2-wide job fits at a time");
            order.push(d.admitted[0].0);
            running = d.admitted[0].1.clone();
        }
        assert_eq!(order, vec![hi1, hi2, lo1, lo2]);
    }

    #[test]
    fn high_priority_submit_bypasses_lower_class_waiters() {
        let mut m = Masterd::new(4, 1);
        let mut jr = JobRep::new();
        // Fill 2 of 4 nodes; a 4-wide job queues; 2 nodes stay free.
        admitted(jr.submit(&mut m, JobSpec::sized("a", 2)));
        queued(jr.submit(&mut m, JobSpec::sized("wide", 4)));
        // A same-class 2-wide job must wait behind the wide one...
        queued(jr.submit(&mut m, JobSpec::sized("b", 2)));
        // ...but a higher-class job may take the free nodes now.
        admitted(jr.submit(&mut m, JobSpec::sized("urgent", 2).with_priority(1)));
        assert_eq!(jr.waiting(), 2);
    }
}
