//! The control network (paper §2.1): "a 10 MB switched Ethernet that
//! serves for control functions".
//!
//! The masterd reaches all nodeds with a single multicast (ParPar preloads
//! jobs over multicast too, [Kavas et al. 2001]); nodeds answer with
//! unicasts that serialize on the master's link. Delivery times are what
//! matter here — payloads travel inside the discrete events of the cluster
//! simulator.

use sim_core::time::{Cycles, SimTime};

/// How the masterd's fan-out (SwitchSlot) and fan-in (acks) traffic is
/// carried over the control Ethernet.
///
/// `Flat` is the paper's model and the digest-stable default. `Serial`
/// and `Tree` are the honest scalability pair the `scale_sweep` bench
/// compares: a serial unicast loop pays O(N) wire transmissions on the
/// master's single link, while the combining tree pays O(fanout) per hop
/// over O(log N) levels, each hop serializing on the forwarding node's
/// own link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlPlane {
    /// Legacy Ethernet multicast: one wire transmission reaches every
    /// node (ParPar preloads over multicast too). The default; all
    /// existing golden digests assume it.
    ///
    /// Optimistic at scale — a real 10 Mb/s segment cannot multicast to
    /// 4096 IP stacks for the price of one frame — which is exactly why
    /// the scalability sweep never uses it.
    #[default]
    Flat,
    /// Serial unicast loop: one wire transmission per node, all queued
    /// on the master's link. The honest O(N) broadcast baseline.
    Serial,
    /// k-ary combining tree over the nodes: commands descend parent →
    /// children and acks ascend as aggregated counts, O(log N) depth.
    Tree {
        /// Children per tree node (≥ 2).
        fanout: usize,
    },
}

/// Timing model of the control Ethernet.
#[derive(Debug, Clone)]
pub struct ControlNet {
    /// One-way latency of a multicast from the master to every node
    /// (wire + IP stack + daemon socket wakeup).
    pub multicast_latency: Cycles,
    /// One-way latency of a node→master unicast.
    pub unicast_latency: Cycles,
    /// Wire serialization per control message (≈128 B at 10 Mb/s).
    pub per_msg_wire: Cycles,
    master_link_free: SimTime,
    /// Per-node Ethernet link horizons, grown on demand. Only the tree
    /// control plane sends node→node traffic; each forwarding node
    /// serializes its own sends on its own link, independent of the
    /// master's.
    node_link_free: Vec<SimTime>,
    /// Messages carried.
    pub messages: u64,
    /// When set, any traffic panics. Shard shells in the windowed parallel
    /// engine carry a poisoned control net: the window classifier proves no
    /// control-plane message is sent inside a window, and this converts a
    /// violated proof into a loud failure instead of a silent divergence.
    poisoned: bool,
}

impl Default for ControlNet {
    fn default() -> Self {
        ControlNet {
            multicast_latency: Cycles::from_us(300),
            unicast_latency: Cycles::from_us(300),
            per_msg_wire: Cycles::from_us(100),
            master_link_free: SimTime::ZERO,
            node_link_free: Vec::new(),
            messages: 0,
            poisoned: false,
        }
    }
}

impl ControlNet {
    /// A control net with default ParPar-era constants.
    pub fn new() -> Self {
        Self::default()
    }

    /// A control net that panics on any use — see the `poisoned` field.
    pub fn poisoned() -> Self {
        ControlNet {
            poisoned: true,
            ..Self::default()
        }
    }

    #[inline]
    fn check_live(&self) {
        assert!(
            !self.poisoned,
            "control-plane traffic inside a parallel window: the event \
             classifier admitted an event that talks to the master"
        );
    }

    /// Master multicasts one message at `now`; returns the delivery instant
    /// at every node (one wire transmission — the multicast property).
    pub fn multicast(&mut self, now: SimTime) -> SimTime {
        self.check_live();
        let start = now.max(self.master_link_free);
        let end = start + self.per_msg_wire;
        self.master_link_free = end;
        self.messages += 1;
        end + self.multicast_latency
    }

    /// A node unicasts one message to the master at `now`; returns delivery
    /// at the master. Node links are independent, but all unicasts share
    /// the master's receive link.
    pub fn unicast_to_master(&mut self, now: SimTime) -> SimTime {
        self.check_live();
        let start = now.max(self.master_link_free);
        let end = start + self.per_msg_wire;
        self.master_link_free = end;
        self.messages += 1;
        end + self.unicast_latency
    }

    /// Master unicasts to a single node.
    pub fn unicast_to_node(&mut self, now: SimTime) -> SimTime {
        // Same shared-link discipline as the multicast.
        self.multicast(now)
    }

    /// Node `from` unicasts one message to another node at `now`;
    /// returns delivery at the peer. Serializes on the *sender's* link —
    /// this is what makes the combining tree's cost model honest: a
    /// node forwarding to `fanout` children pays `fanout` back-to-back
    /// wire transmissions on its own link, but different forwarders pay
    /// them concurrently.
    pub fn unicast_node_to_node(&mut self, now: SimTime, from: usize) -> SimTime {
        self.check_live();
        if self.node_link_free.len() <= from {
            self.node_link_free.resize(from + 1, SimTime::ZERO);
        }
        let start = now.max(self.node_link_free[from]);
        let end = start + self.per_msg_wire;
        self.node_link_free[from] = end;
        self.messages += 1;
        end + self.unicast_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_is_one_transmission() {
        let mut c = ControlNet::new();
        let d = c.multicast(SimTime::ZERO);
        // 100 us wire + 300 us latency = 400 us = 80_000 cycles.
        assert_eq!(d, SimTime(80_000));
        assert_eq!(c.messages, 1);
    }

    #[test]
    fn master_link_serializes_messages() {
        let mut c = ControlNet::new();
        let d1 = c.multicast(SimTime::ZERO);
        let d2 = c.multicast(SimTime::ZERO);
        assert_eq!(d2.raw() - d1.raw(), c.per_msg_wire.raw());
        // Node replies queue behind too.
        let r = c.unicast_to_master(SimTime::ZERO);
        assert!(r > d2);
    }

    #[test]
    #[should_panic(expected = "control-plane traffic inside a parallel window")]
    fn poisoned_net_rejects_traffic() {
        ControlNet::poisoned().unicast_to_master(SimTime::ZERO);
    }

    #[test]
    fn node_links_serialize_independently() {
        let mut c = ControlNet::new();
        // Two different forwarders at the same instant: no shared queueing.
        let a = c.unicast_node_to_node(SimTime::ZERO, 3);
        let b = c.unicast_node_to_node(SimTime::ZERO, 7);
        assert_eq!(a, b, "distinct sender links must not queue on each other");
        // Same forwarder back-to-back: its own link serializes.
        let a2 = c.unicast_node_to_node(SimTime::ZERO, 3);
        assert_eq!(a2.raw() - a.raw(), c.per_msg_wire.raw());
        // Node traffic never touches the master's link.
        let m = c.multicast(SimTime::ZERO);
        assert_eq!(m, SimTime(80_000));
    }

    #[test]
    fn control_plane_default_is_flat() {
        assert_eq!(ControlPlane::default(), ControlPlane::Flat);
    }

    #[test]
    fn idle_link_adds_no_queueing() {
        let mut c = ControlNet::new();
        let d1 = c.unicast_to_master(SimTime::ZERO);
        let d2 = c.unicast_to_master(SimTime(10_000_000));
        assert_eq!(
            d2.raw() - 10_000_000,
            d1.raw(),
            "an idle link should impose only fixed costs"
        );
    }
}
