//! Open-loop job traffic: a deterministic arrival plan feeding the
//! jobrep's admission queue as timed events.
//!
//! The paper only ever runs a fixed batch of jobs; the serving-cluster
//! north star (ROADMAP item 5) needs jobs to *arrive* — as a Poisson
//! process at an offered rate, or as an explicit trace — with per-job
//! sizes drawn from the seeded RNG so every run is exactly reproducible.
//!
//! The plan is materialised up front from a [`DetRng`]: a pure function
//! of `(seed, rate, horizon)`, independent of anything the simulation
//! later does. That is what keeps open-loop traffic open-loop (arrivals
//! do not react to queueing) and what keeps the latency percentiles
//! bit-identical across thread counts — the event set is fixed before
//! the first event fires.

use sim_core::rng::DetRng;
use sim_core::time::{Cycles, CPU_HZ};

/// One planned job arrival, relative to the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalSpec {
    /// Arrival instant as an offset from time zero.
    pub at: Cycles,
    /// Processes the job needs (one per node).
    pub nprocs: usize,
    /// Scenario-defined work size (e.g. message count for a p2p job),
    /// drawn from the seeded RNG for Poisson plans.
    pub size: u64,
    /// Admission priority class (higher is served first; FIFO within a
    /// class).
    pub priority: u8,
}

/// A fully materialised, time-sorted arrival plan.
#[derive(Debug, Clone, Default)]
pub struct ArrivalPlan {
    jobs: Vec<ArrivalSpec>,
}

/// RNG stream tags: arrival times and job sizes come from independent
/// forks so changing the offered rate never reshuffles the size draws.
const STREAM_TIMES: u64 = 0x41;
const STREAM_SIZES: u64 = 0x52;

impl ArrivalPlan {
    /// Poisson arrivals at `rate_per_sec` over `[0, horizon)`, every job
    /// `nprocs` wide with its size drawn uniformly from
    /// `[size_lo, size_hi]`. Deterministic in `seed`.
    pub fn poisson(
        seed: u64,
        rate_per_sec: f64,
        horizon: Cycles,
        nprocs: usize,
        size_lo: u64,
        size_hi: u64,
    ) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        assert!(size_lo <= size_hi, "size range is inverted");
        let root = DetRng::new(seed);
        let mut times = root.fork(STREAM_TIMES);
        let mut sizes = root.fork(STREAM_SIZES);
        let mut jobs = Vec::new();
        let mut t = 0.0f64;
        let horizon_secs = horizon.raw() as f64 / CPU_HZ as f64;
        loop {
            // Exponential inter-arrival via inverse CDF; `1 - unit()` is
            // in (0, 1], so the log is finite.
            t += -(1.0 - times.unit()).ln() / rate_per_sec;
            if t >= horizon_secs {
                break;
            }
            let at = Cycles((t * CPU_HZ as f64) as u64);
            let size = sizes.range(size_lo, size_hi + 1);
            jobs.push(ArrivalSpec {
                at,
                nprocs,
                size,
                priority: 0,
            });
        }
        ArrivalPlan { jobs }
    }

    /// An explicit trace. Entries are stably sorted by arrival time, so
    /// same-instant jobs keep their trace order.
    pub fn trace(mut entries: Vec<ArrivalSpec>) -> Self {
        entries.sort_by_key(|e| e.at);
        ArrivalPlan { jobs: entries }
    }

    /// Planned arrivals, ascending in time.
    pub fn jobs(&self) -> &[ArrivalSpec] {
        &self.jobs
    }

    /// Number of planned arrivals.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the plan has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let a = ArrivalPlan::poisson(7, 50.0, Cycles::from_secs(2), 2, 10, 90);
        let b = ArrivalPlan::poisson(7, 50.0, Cycles::from_secs(2), 2, 10, 90);
        assert_eq!(a.jobs(), b.jobs());
        assert!(!a.is_empty());
        for w in a.jobs().windows(2) {
            assert!(w[0].at <= w[1].at, "arrivals out of order");
        }
        for j in a.jobs() {
            assert!(j.at < Cycles::from_secs(2));
            assert!((10..=90).contains(&j.size));
            assert_eq!(j.nprocs, 2);
        }
    }

    #[test]
    fn poisson_rate_scales_count() {
        let slow = ArrivalPlan::poisson(7, 20.0, Cycles::from_secs(4), 2, 1, 1);
        let fast = ArrivalPlan::poisson(7, 200.0, Cycles::from_secs(4), 2, 1, 1);
        // Expect ~80 vs ~800; allow wide stochastic slack.
        assert!(slow.len() > 40 && slow.len() < 160, "{}", slow.len());
        assert!(fast.len() > 8 * slow.len() / 2, "{}", fast.len());
    }

    #[test]
    fn size_draws_survive_rate_changes() {
        // Same seed, different rates: the k-th job's size is the k-th
        // draw of the size stream either way.
        let a = ArrivalPlan::poisson(9, 10.0, Cycles::from_secs(4), 2, 5, 500);
        let b = ArrivalPlan::poisson(9, 40.0, Cycles::from_secs(4), 2, 5, 500);
        let n = a.len().min(b.len());
        assert!(n > 0);
        for i in 0..n {
            assert_eq!(a.jobs()[i].size, b.jobs()[i].size, "draw {i}");
        }
    }

    #[test]
    fn trace_sorts_stably() {
        let mk = |at, size| ArrivalSpec {
            at: Cycles(at),
            nprocs: 2,
            size,
            priority: 0,
        };
        let plan = ArrivalPlan::trace(vec![mk(30, 1), mk(10, 2), mk(30, 3), mk(10, 4)]);
        let sizes: Vec<u64> = plan.jobs().iter().map(|j| j.size).collect();
        assert_eq!(sizes, vec![2, 4, 1, 3]);
    }
}
