//! Fixed-capacity packet rings.
//!
//! Both FM queues are rings of fixed-size packet slots: the send queue in
//! LANai RAM (252 slots of 1560 B on ParPar) and the receive queue in the
//! pinned host DMA buffer (668 slots). The ring tracks *valid* (occupied)
//! slots — the quantity Fig. 8 measures and the improved buffer-switch
//! algorithm copies.

use std::collections::VecDeque;

/// Error returned when pushing into a full ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

/// Upper bound on the slots eagerly allocated by [`PacketRing::new`].
///
/// Logical capacity may be far larger (a ring sized for a whole job's
/// receive window); physical memory grows on demand past this point. The
/// bound exists so constructing many huge-capacity rings (one per context
/// per node) stays cheap.
pub const PREALLOC_SLOTS: usize = 1024;

/// A bounded FIFO ring of packet descriptors.
///
/// ```
/// use lanai::queue::PacketRing;
///
/// let mut ring: PacketRing<u32> = PacketRing::new(3);
/// ring.push(7).unwrap();
/// ring.push(8).unwrap();
/// // The buffer switch drains the valid packets to backing store…
/// let saved = ring.drain_all();
/// assert_eq!(saved, vec![7, 8]);
/// // …and loads them back on restore, preserving FIFO order.
/// ring.load(saved);
/// assert_eq!(ring.pop(), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct PacketRing<P> {
    slots: VecDeque<P>,
    capacity: usize,
    high_water: usize,
    total_pushed: u64,
    total_popped: u64,
}

impl<P> PacketRing<P> {
    /// A ring with `capacity` packet slots.
    pub fn new(capacity: usize) -> Self {
        PacketRing {
            slots: VecDeque::with_capacity(capacity.min(PREALLOC_SLOTS)),
            capacity,
            high_water: 0,
            total_pushed: 0,
            total_popped: 0,
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Valid (occupied) slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True if all slots are occupied.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.slots.len()
    }

    /// Append a packet; fails if the ring is full.
    pub fn push(&mut self, p: P) -> Result<(), RingFull> {
        if self.is_full() {
            return Err(RingFull);
        }
        self.slots.push_back(p);
        self.total_pushed += 1;
        if self.slots.len() > self.high_water {
            self.high_water = self.slots.len();
        }
        Ok(())
    }

    /// Remove the oldest packet.
    pub fn pop(&mut self) -> Option<P> {
        let p = self.slots.pop_front();
        if p.is_some() {
            self.total_popped += 1;
        }
        p
    }

    /// Oldest packet without removing it.
    pub fn peek(&self) -> Option<&P> {
        self.slots.front()
    }

    /// Iterate valid packets, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &P> {
        self.slots.iter()
    }

    /// Remove all packets, returning them in FIFO order. Used by the buffer
    /// switch to move queue contents into backing store.
    pub fn drain_all(&mut self) -> Vec<P> {
        self.total_popped += self.slots.len() as u64;
        self.slots.drain(..).collect()
    }

    /// Refill from saved contents (restore side of the buffer switch).
    /// Panics if the contents exceed capacity — saved state always came from
    /// a ring of the same geometry.
    pub fn load(&mut self, packets: Vec<P>) {
        assert!(
            self.slots.is_empty(),
            "loading into a non-empty ring would interleave jobs' packets"
        );
        assert!(
            packets.len() <= self.capacity,
            "saved contents exceed ring capacity"
        );
        self.total_pushed += packets.len() as u64;
        self.slots.extend(packets);
        if self.slots.len() > self.high_water {
            self.high_water = self.slots.len();
        }
    }

    /// Remove all packets into `buf` in FIFO order, reusing its allocation.
    /// Allocation-free analogue of [`drain_all`](Self::drain_all) for the
    /// buffer-switch hot path; `buf` is cleared first.
    pub fn drain_into(&mut self, buf: &mut Vec<P>) {
        buf.clear();
        self.total_popped += self.slots.len() as u64;
        buf.extend(self.slots.drain(..));
    }

    /// Refill from `buf`, draining it in place (restore side of the buffer
    /// switch, without giving up `buf`'s allocation). Same invariants as
    /// [`load`](Self::load): the ring must be empty and the contents must
    /// fit in `capacity`.
    pub fn load_from(&mut self, buf: &mut Vec<P>) {
        assert!(
            self.slots.is_empty(),
            "loading into a non-empty ring would interleave jobs' packets"
        );
        assert!(
            buf.len() <= self.capacity,
            "saved contents exceed ring capacity"
        );
        self.total_pushed += buf.len() as u64;
        self.slots.extend(buf.drain(..));
        if self.slots.len() > self.high_water {
            self.high_water = self.slots.len();
        }
    }

    /// Account for `n` packets that logically passed through this ring
    /// without ever being materialized in it (the burst fast path hands a
    /// fragment straight to its consumer). Counter-equivalent to `n`
    /// push/pop pairs on an empty ring: totals advance by `n` each and the
    /// high-water mark reflects the momentary occupancy of 1.
    pub fn account_passthrough(&mut self, n: u64) {
        debug_assert!(
            self.slots.is_empty(),
            "passthrough accounting on a non-empty ring is not pop-order-equivalent"
        );
        self.total_pushed += n;
        self.total_popped += n;
        if n > 0 && self.high_water == 0 {
            self.high_water = 1;
        }
    }

    /// Largest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// (pushed, popped) lifetime counters.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_pushed, self.total_popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let mut r = PacketRing::new(3);
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.peek(), Some(&2));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = PacketRing::new(2);
        r.push('a').unwrap();
        r.push('b').unwrap();
        assert!(r.is_full());
        assert_eq!(r.push('c'), Err(RingFull));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn drain_and_load_round_trip() {
        let mut r = PacketRing::new(5);
        for i in 0..4 {
            r.push(i).unwrap();
        }
        let saved = r.drain_all();
        assert_eq!(saved, vec![0, 1, 2, 3]);
        assert!(r.is_empty());
        r.load(saved);
        assert_eq!(r.len(), 4);
        assert_eq!(r.pop(), Some(0));
    }

    #[test]
    fn high_water_and_totals() {
        let mut r = PacketRing::new(10);
        for i in 0..7 {
            r.push(i).unwrap();
        }
        for _ in 0..5 {
            r.pop();
        }
        r.push(99).unwrap();
        assert_eq!(r.high_water(), 7);
        assert_eq!(r.totals(), (8, 5));
    }

    #[test]
    fn drain_into_and_load_from_reuse_buffer() {
        let mut r = PacketRing::new(5);
        let mut buf = vec![42]; // stale contents must be cleared
        for i in 0..4 {
            r.push(i).unwrap();
        }
        r.drain_into(&mut buf);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert!(r.is_empty());
        let cap_before = buf.capacity();
        r.load_from(&mut buf);
        assert!(buf.is_empty());
        assert_eq!(
            buf.capacity(),
            cap_before,
            "load_from must keep the allocation"
        );
        assert_eq!(r.len(), 4);
        assert_eq!(r.pop(), Some(0));
        assert_eq!(r.totals(), (8, 5));
        assert_eq!(r.high_water(), 4);
    }

    #[test]
    fn passthrough_matches_push_pop_counters() {
        let mut real = PacketRing::new(4);
        let mut fast = PacketRing::new(4);
        for i in 0..3 {
            real.push(i).unwrap();
            real.pop();
        }
        fast.account_passthrough(3);
        assert_eq!(real.totals(), fast.totals());
        assert_eq!(real.high_water(), fast.high_water());
        // An already-seen higher mark is preserved.
        real.push(7).unwrap();
        real.push(8).unwrap();
        real.pop();
        real.pop();
        fast.push(7).unwrap();
        fast.push(8).unwrap();
        fast.pop();
        fast.pop();
        real.push(9).unwrap();
        real.pop();
        fast.account_passthrough(1);
        assert_eq!(real.totals(), fast.totals());
        assert_eq!(real.high_water(), 2);
        assert_eq!(fast.high_water(), 2);
    }

    #[test]
    fn prealloc_is_capped_but_capacity_is_logical() {
        let r: PacketRing<u64> = PacketRing::new(PREALLOC_SLOTS * 4);
        assert_eq!(r.capacity(), PREALLOC_SLOTS * 4);
        // Eager allocation stops at the documented cap; the ring still
        // accepts its full logical capacity.
        let mut r: PacketRing<u8> = PacketRing::new(PREALLOC_SLOTS + 8);
        for _ in 0..PREALLOC_SLOTS + 8 {
            r.push(0).unwrap();
        }
        assert!(r.is_full());
        assert_eq!(r.push(0), Err(RingFull));
    }

    #[test]
    #[should_panic(expected = "exceed ring capacity")]
    fn load_over_capacity_panics() {
        let mut r = PacketRing::new(1);
        r.load(vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "exceed ring capacity")]
    fn load_from_over_capacity_panics() {
        let mut r = PacketRing::new(1);
        let mut buf = vec![1, 2];
        r.load_from(&mut buf);
    }

    #[test]
    #[should_panic(expected = "non-empty ring")]
    fn load_from_into_nonempty_panics() {
        let mut r = PacketRing::new(3);
        r.push(1).unwrap();
        let mut buf = vec![2];
        r.load_from(&mut buf);
    }

    #[test]
    #[should_panic(expected = "non-empty ring")]
    fn load_into_nonempty_panics() {
        let mut r = PacketRing::new(3);
        r.push(1).unwrap();
        r.load(vec![2]);
    }
}
