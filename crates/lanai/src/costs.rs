//! LANai firmware and DMA cost constants.
//!
//! The LANai 4.3 is a slow (~33 MHz) embedded processor: per-packet
//! firmware overheads of a few microseconds are what kept FM's small-
//! message bandwidth well under the 160 MB/s wire rate on real hardware.

use sim_core::time::Cycles;

/// Tunable NIC-side costs (in host cycles at 200 MHz).
#[derive(Debug, Clone)]
pub struct NicCosts {
    /// Send-context firmware work per data packet (scan queues, build
    /// header, program the wire DMA).
    pub send_per_packet: Cycles,
    /// Receive-context firmware work per data packet (interrupt, classify,
    /// program host DMA).
    pub recv_per_packet: Cycles,
    /// PCI DMA bandwidth NIC→host for received payloads, bytes/s
    /// (32-bit/33 MHz PCI ≈ 132 MB/s).
    pub dma_bw: u64,
    /// Firmware work to emit or count one specially-tagged control packet
    /// (halt/ready); these bypass queues and credits entirely.
    pub control_packet: Cycles,
}

impl Default for NicCosts {
    fn default() -> Self {
        NicCosts {
            send_per_packet: Cycles::from_us(2),
            recv_per_packet: Cycles::from_us(2),
            dma_bw: 132_000_000,
            control_packet: Cycles::from_us(1),
        }
    }
}

impl NicCosts {
    /// Cycles the receive engine is busy landing one packet of `bytes`
    /// into the host receive queue.
    pub fn recv_cycles(&self, bytes: u64) -> Cycles {
        self.recv_per_packet + Cycles::for_bytes_at(bytes, self.dma_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recv_cost_scales_with_bytes() {
        let c = NicCosts::default();
        let small = c.recv_cycles(64);
        let large = c.recv_cycles(1536);
        assert!(large > small);
        // 1536 B over 132 MB/s ≈ 11.6 us ≈ 2328 cycles, plus overhead.
        assert!((2000..3500).contains(&large.raw()), "{large:?}");
    }

    #[test]
    fn per_packet_overheads_are_microseconds() {
        let c = NicCosts::default();
        assert!(c.send_per_packet.raw() >= Cycles::from_us(1).raw());
        assert!(c.send_per_packet.raw() <= Cycles::from_us(10).raw());
    }
}
