//! The LANai network interface card.
//!
//! Holds the per-process communication contexts (paper §2.2): each context
//! couples a job/rank identity with a send queue in NIC RAM and a receive
//! queue in the pinned host DMA buffer. The card exposes the *halt bit*
//! that the modified control program checks before sending each packet
//! (paper §3.2), and serial send/receive engine timelines that the cluster
//! simulator reserves work on.

use sim_core::time::{Cycles, SimTime};

use crate::costs::NicCosts;
use crate::queue::PacketRing;

/// Index of a context slot on a NIC.
pub type CtxId = usize;

/// Why a context allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicError {
    /// All context slots are in use.
    NoFreeContext,
    /// The requested send-queue space does not fit in NIC RAM.
    MemoryExhausted,
    /// A context for this (job, rank) already exists.
    DuplicateContext,
}

/// One communication context resident on the card.
#[derive(Debug, Clone)]
pub struct NicContext<P> {
    /// Owning job.
    pub job: u32,
    /// Rank of the owning process within the job.
    pub rank: usize,
    /// Send queue (lives in NIC RAM).
    pub send_q: PacketRing<P>,
    /// Receive queue (lives in the pinned host DMA buffer).
    pub recv_q: PacketRing<P>,
}

/// Running NIC counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Data packets injected into the network.
    pub data_sent: u64,
    /// Data packets landed into a receive queue.
    pub data_received: u64,
    /// Control packets (halt/ready) emitted.
    pub control_sent: u64,
    /// Control packets counted.
    pub control_received: u64,
    /// Arrivals dropped because no resident context matched (only possible
    /// under the no-flush ablation strategies).
    pub dropped_no_context: u64,
    /// Arrivals dropped because the receive ring was full (a flow-control
    /// violation; never happens when credits are honored).
    pub dropped_ring_full: u64,
}

/// A simulated LANai NIC.
#[derive(Debug, Clone)]
pub struct Nic<P> {
    /// Host this NIC is plugged into.
    pub node: usize,
    /// Total NIC RAM reserved for send queues, bytes (400 KB on ParPar).
    pub send_buf_bytes: u64,
    /// Fixed packet slot size, bytes (1560 on ParPar).
    pub packet_bytes: u64,
    contexts: Vec<Option<NicContext<P>>>,
    halt_bit: bool,
    engine_free: SimTime,
    /// Cost constants.
    pub costs: NicCosts,
    /// Counters.
    pub stats: NicStats,
}

impl<P> Nic<P> {
    /// A NIC with `max_contexts` context slots.
    pub fn new(node: usize, max_contexts: usize, send_buf_bytes: u64, packet_bytes: u64) -> Self {
        assert!(max_contexts >= 1);
        Nic {
            node,
            send_buf_bytes,
            packet_bytes,
            contexts: (0..max_contexts).map(|_| None).collect(),
            halt_bit: false,
            engine_free: SimTime::ZERO,
            costs: NicCosts::default(),
            stats: NicStats::default(),
        }
    }

    /// NIC RAM currently committed to send queues, bytes.
    pub fn send_ram_used(&self) -> u64 {
        self.contexts
            .iter()
            .flatten()
            .map(|c| c.send_q.capacity() as u64 * self.packet_bytes)
            .sum()
    }

    /// Allocate a context for (job, rank) with the given queue geometries
    /// (in packets). The CM's job in stock FM; COMM_init_job's here.
    pub fn alloc_context(
        &mut self,
        job: u32,
        rank: usize,
        send_cap: usize,
        recv_cap: usize,
    ) -> Result<CtxId, NicError> {
        if self.find_context(job).is_some() {
            return Err(NicError::DuplicateContext);
        }
        let need = send_cap as u64 * self.packet_bytes;
        if self.send_ram_used() + need > self.send_buf_bytes {
            return Err(NicError::MemoryExhausted);
        }
        let slot = self
            .contexts
            .iter()
            .position(Option::is_none)
            .ok_or(NicError::NoFreeContext)?;
        self.contexts[slot] = Some(NicContext {
            job,
            rank,
            send_q: PacketRing::new(send_cap),
            recv_q: PacketRing::new(recv_cap),
        });
        Ok(slot)
    }

    /// Release a context slot (job teardown, or eviction by the buffer
    /// switcher). Returns the context so its queues can be saved.
    pub fn free_context(&mut self, id: CtxId) -> Option<NicContext<P>> {
        self.contexts.get_mut(id).and_then(Option::take)
    }

    /// Install a previously saved/constructed context into a free slot.
    pub fn install_context(&mut self, ctx: NicContext<P>) -> Result<CtxId, NicError> {
        let need = ctx.send_q.capacity() as u64 * self.packet_bytes;
        if self.send_ram_used() + need > self.send_buf_bytes {
            return Err(NicError::MemoryExhausted);
        }
        let slot = self
            .contexts
            .iter()
            .position(Option::is_none)
            .ok_or(NicError::NoFreeContext)?;
        self.contexts[slot] = Some(ctx);
        Ok(slot)
    }

    /// Context by slot id.
    pub fn context(&self, id: CtxId) -> Option<&NicContext<P>> {
        self.contexts.get(id).and_then(Option::as_ref)
    }

    /// Context by slot id, mutably.
    pub fn context_mut(&mut self, id: CtxId) -> Option<&mut NicContext<P>> {
        self.contexts.get_mut(id).and_then(Option::as_mut)
    }

    /// Slot id of the context owned by `job`, if resident.
    pub fn find_context(&self, job: u32) -> Option<CtxId> {
        self.contexts
            .iter()
            .position(|c| c.as_ref().is_some_and(|c| c.job == job))
    }

    /// All resident context slot ids.
    pub fn resident_contexts(&self) -> impl Iterator<Item = CtxId> + '_ {
        self.contexts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| i))
    }

    /// The halt bit the control program checks before each send.
    pub fn halt_bit(&self) -> bool {
        self.halt_bit
    }

    /// Set/clear the halt bit (COMM_halt_network / COMM_release_network).
    pub fn set_halt_bit(&mut self, v: bool) {
        self.halt_bit = v;
    }

    /// When the LANai processor is next free.
    ///
    /// The LANai is one processor alternating between its send and receive
    /// contexts (paper §2.2); heavy receive traffic therefore steals time
    /// from sending — the mechanism behind the send-queue buildup Fig. 8
    /// observes under all-to-all.
    pub fn engine_free(&self) -> SimTime {
        self.engine_free
    }

    /// Reserve the LANai processor for `work` (send or receive context),
    /// returning the completion time.
    pub fn reserve_engine(&mut self, now: SimTime, work: Cycles) -> SimTime {
        let start = now.max(self.engine_free);
        self.engine_free = start + work;
        self.engine_free
    }

    /// Keep the processor busy through `t` (e.g. while the send DMA
    /// streams a packet onto the wire).
    pub fn engine_extend_to(&mut self, t: SimTime) {
        self.engine_free = self.engine_free.max(t);
    }

    /// Total valid packets in all resident send queues.
    pub fn send_q_occupancy(&self) -> usize {
        self.contexts.iter().flatten().map(|c| c.send_q.len()).sum()
    }

    /// Total valid packets in all resident receive queues.
    pub fn recv_q_occupancy(&self) -> usize {
        self.contexts.iter().flatten().map(|c| c.recv_q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PKT: u64 = 1560;
    const SEND_BUF: u64 = 400 * 1024;

    fn nic() -> Nic<u32> {
        Nic::new(0, 8, SEND_BUF, PKT)
    }

    #[test]
    fn alloc_and_find() {
        let mut n = nic();
        let a = n.alloc_context(1, 0, 252, 668).unwrap();
        assert_eq!(n.find_context(1), Some(a));
        assert_eq!(n.find_context(2), None);
        assert_eq!(n.context(a).unwrap().rank, 0);
        assert_eq!(n.send_ram_used(), 252 * PKT);
    }

    #[test]
    fn duplicate_job_rejected() {
        let mut n = nic();
        n.alloc_context(1, 0, 10, 10).unwrap();
        assert_eq!(
            n.alloc_context(1, 0, 10, 10),
            Err(NicError::DuplicateContext)
        );
    }

    #[test]
    fn memory_budget_enforced() {
        let mut n = nic();
        // Full-size context fits exactly once: 252 * 1560 = 393120 of 409600.
        n.alloc_context(1, 0, 252, 668).unwrap();
        assert_eq!(
            n.alloc_context(2, 0, 252, 668),
            Err(NicError::MemoryExhausted)
        );
        // But two half-size contexts fit (the static-division regime).
        let mut n = nic();
        n.alloc_context(1, 0, 126, 334).unwrap();
        n.alloc_context(2, 0, 126, 334).unwrap();
    }

    #[test]
    fn context_slots_limited() {
        let mut n: Nic<u32> = Nic::new(0, 2, SEND_BUF, PKT);
        n.alloc_context(1, 0, 1, 1).unwrap();
        n.alloc_context(2, 0, 1, 1).unwrap();
        assert_eq!(n.alloc_context(3, 0, 1, 1), Err(NicError::NoFreeContext));
    }

    #[test]
    fn free_and_install_round_trip() {
        let mut n = nic();
        let id = n.alloc_context(1, 0, 252, 668).unwrap();
        n.context_mut(id).unwrap().send_q.push(42).unwrap();
        let ctx = n.free_context(id).unwrap();
        assert_eq!(n.send_ram_used(), 0);
        assert_eq!(ctx.send_q.len(), 1);
        let id2 = n.install_context(ctx).unwrap();
        assert_eq!(n.context(id2).unwrap().send_q.peek(), Some(&42));
    }

    #[test]
    fn single_processor_serializes_send_and_receive_work() {
        let mut n = nic();
        let t1 = n.reserve_engine(SimTime(0), Cycles(100));
        let t2 = n.reserve_engine(SimTime(50), Cycles(100));
        assert_eq!(t1, SimTime(100));
        assert_eq!(t2, SimTime(200));
        // Receive work queues behind send work: one LANai processor.
        let r = n.reserve_engine(SimTime(50), Cycles(10));
        assert_eq!(r, SimTime(210));
        n.engine_extend_to(SimTime(500));
        assert_eq!(n.engine_free(), SimTime(500));
        n.engine_extend_to(SimTime(400));
        assert_eq!(n.engine_free(), SimTime(500));
    }

    #[test]
    fn halt_bit_toggles() {
        let mut n = nic();
        assert!(!n.halt_bit());
        n.set_halt_bit(true);
        assert!(n.halt_bit());
        n.set_halt_bit(false);
        assert!(!n.halt_bit());
    }

    #[test]
    fn occupancy_sums_across_contexts() {
        let mut n = nic();
        let a = n.alloc_context(1, 0, 10, 10).unwrap();
        let b = n.alloc_context(2, 0, 10, 10).unwrap();
        n.context_mut(a).unwrap().send_q.push(1).unwrap();
        n.context_mut(b).unwrap().send_q.push(2).unwrap();
        n.context_mut(b).unwrap().recv_q.push(3).unwrap();
        assert_eq!(n.send_q_occupancy(), 2);
        assert_eq!(n.recv_q_occupancy(), 1);
    }
}
