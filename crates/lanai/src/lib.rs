//! # lanai — simulated LANai 4.3 network interface card
//!
//! The NIC substrate of the reproduction: context slots pairing an on-card
//! send queue with a pinned-host-memory receive queue (paper §2.2, Fig. 1),
//! the halt bit checked on packet boundaries by the modified control
//! program (paper §3.2), serial send/receive engine timelines, and firmware
//! cost constants.
//!
//! The crate is passive (state + cost arithmetic); the `cluster` crate
//! drives it with discrete events, and the flush state machine built on the
//! halt bit lives in `gang-comm`, since it is part of the paper's
//! contribution.

#![warn(missing_docs)]

pub mod costs;
pub mod nic;
pub mod queue;

pub use costs::NicCosts;
pub use nic::{CtxId, Nic, NicContext, NicError, NicStats};
pub use queue::{PacketRing, RingFull};
