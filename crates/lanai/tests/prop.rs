//! Model-based property tests for the packet ring.

use lanai::queue::PacketRing;
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum Action {
    Push(u32),
    Pop,
    DrainAndReload,
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => any::<u32>().prop_map(Action::Push),
        2 => Just(Action::Pop),
        1 => Just(Action::DrainAndReload),
    ]
}

proptest! {
    /// The ring behaves exactly like a bounded FIFO model, including
    /// across drain/reload cycles (the buffer-switch path).
    #[test]
    fn ring_matches_bounded_fifo_model(
        cap in 1usize..64,
        actions in proptest::collection::vec(action(), 0..300),
    ) {
        let mut ring = PacketRing::new(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for a in actions {
            match a {
                Action::Push(v) => {
                    let ok = ring.push(v).is_ok();
                    prop_assert_eq!(ok, model.len() < cap);
                    if ok {
                        model.push_back(v);
                    }
                }
                Action::Pop => {
                    prop_assert_eq!(ring.pop(), model.pop_front());
                }
                Action::DrainAndReload => {
                    let saved = ring.drain_all();
                    prop_assert_eq!(&saved, &model.iter().copied().collect::<Vec<_>>());
                    ring.load(saved);
                }
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.is_full(), model.len() == cap);
            prop_assert_eq!(ring.peek(), model.front());
        }
    }

    /// Occupancy bookkeeping: pushed - popped == len at all times.
    #[test]
    fn totals_balance(cap in 1usize..32, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut ring = PacketRing::new(cap);
        for (i, push) in ops.into_iter().enumerate() {
            if push {
                let _ = ring.push(i);
            } else {
                let _ = ring.pop();
            }
            let (pushed, popped) = ring.totals();
            prop_assert_eq!(pushed - popped, ring.len() as u64);
            prop_assert!(ring.high_water() <= cap);
        }
    }
}
