//! The deprecated free-function measure API is a pure veneer: each
//! function must produce results bit-identical to the `Measurement`
//! builder chain its deprecation note names. Compared via `Debug`
//! rendering, which round-trips every field including the f64s.

#![allow(deprecated)]

use cluster::measure::{
    fig5_cell, fig5_cell_batch, fig6_cell, fig6_cell_batch, switch_overhead_run_batch, Measurement,
};
use gang_comm::strategy::SwitchStrategy;
use gang_comm::switcher::CopyStrategy;
use sim_core::time::Cycles;

#[test]
fn fig5_free_function_matches_builder() {
    let free = fig5_cell(2, 2048, 40, 5);
    let built = Measurement::fig5(2, 2048, 40).seed(5).run();
    assert_eq!(format!("{free:?}"), format!("{built:?}"));
}

#[test]
fn fig5_batch_free_function_matches_builder() {
    let free = fig5_cell_batch(2, 2048, 40, 5, 8);
    let built = Measurement::fig5(2, 2048, 40).seed(5).batch(8).run();
    assert_eq!(format!("{free:?}"), format!("{built:?}"));
}

#[test]
fn fig6_free_function_matches_builder() {
    let (q, d) = (Cycles::from_ms(20), Cycles::from_ms(60));
    let free = fig6_cell(2, 2048, q, d, 11);
    let built = Measurement::fig6(2, 2048, q, d).seed(11).run();
    assert_eq!(format!("{free:?}"), format!("{built:?}"));
}

#[test]
fn fig6_batch_free_function_matches_builder() {
    let (q, d) = (Cycles::from_ms(20), Cycles::from_ms(60));
    let free = fig6_cell_batch(2, 2048, q, d, 11, 8);
    let built = Measurement::fig6(2, 2048, q, d).seed(11).batch(8).run();
    assert_eq!(format!("{free:?}"), format!("{built:?}"));
}

#[test]
fn switch_overhead_batch_free_function_matches_builder() {
    let free = switch_overhead_run_batch(
        4,
        CopyStrategy::ValidOnly,
        SwitchStrategy::GangFlush,
        3,
        7,
        8,
    );
    let built =
        Measurement::switch_overhead(4, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 3)
            .seed(7)
            .batch(8)
            .run();
    assert_eq!(format!("{free:?}"), format!("{built:?}"));
}
