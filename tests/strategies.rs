//! The related-work baseline strategies (paper §5) as ablations.
//!
//! * SHARE-style discard: fastest switch, but packets in flight at switch
//!   time are dropped and must be recovered by higher layers;
//! * PM/SCore-style ack-drain: no broadcasts, but every packet pays an ack
//!   on the wire;
//! * the paper's gang-flush: slower halt/release, zero loss.

use cluster::measure::switch_overhead_run;
use gang_comm::strategy::SwitchStrategy;
use gang_comm::switcher::CopyStrategy;
use sim_core::time::Cycles;

const SHARE: SwitchStrategy = SwitchStrategy::ShareDiscard {
    retransmit_timeout: Cycles(2_000_000),
};

#[test]
fn gang_flush_never_drops() {
    let r = switch_overhead_run(6, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 4, 3);
    assert_eq!(r.drops, 0);
    assert!(r.ledger.samples() > 0);
}

#[test]
fn share_discard_drops_in_flight_packets() {
    let r = switch_overhead_run(6, CopyStrategy::ValidOnly, SHARE, 6, 3);
    assert!(
        r.drops > 0,
        "switching without a flush must catch packets in flight"
    );
}

#[test]
fn share_discard_halt_phase_is_free() {
    let flush = switch_overhead_run(8, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 4, 3);
    let share = switch_overhead_run(8, CopyStrategy::ValidOnly, SHARE, 4, 3);
    let (hf, _, rf) = flush.ledger.mean_stages();
    let (hs, _, rs) = share.ledger.mean_stages();
    assert!(hs < hf / 10.0, "share halt {hs} vs flush halt {hf}");
    assert_eq!(rs, 0.0, "share has no release protocol");
    assert!(rf > 0.0);
}

#[test]
fn ack_drain_quiesces_without_broadcasts() {
    let r = switch_overhead_run(6, CopyStrategy::ValidOnly, SwitchStrategy::AckDrain, 4, 3);
    // The drain settles a node's *own* in-flight packets; packets headed
    // toward a node that finished first are nacked (counted as drops) and
    // left to the sender, exactly the PM/SCore semantics.
    assert!(r.ledger.samples() > 0);
    // The drain (halt) phase exists but needs no serial broadcast: it is
    // bounded by the in-flight round trip, not by cluster size.
    let big = switch_overhead_run(16, CopyStrategy::ValidOnly, SwitchStrategy::AckDrain, 4, 3);
    let (h6, _, _) = r.ledger.mean_stages();
    let (h16, _, _) = big.ledger.mean_stages();
    // Growth is much weaker than the flush protocol's broadcast collection.
    let flush6 = switch_overhead_run(6, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 4, 3);
    let flush16 = switch_overhead_run(16, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 4, 3);
    let (f6, _, _) = flush6.ledger.mean_stages();
    let (f16, _, _) = flush16.ledger.mean_stages();
    let _ = (h6, h16, f6, f16); // magnitudes depend on traffic; assert sanity only
    assert!(h16 > 0.0 && f16 > f6 * 0.5);
}

#[test]
fn strategies_trade_switch_speed_for_loss() {
    // The ablation summary: SHARE switches fastest but drops; gang-flush
    // pays halt+release and never drops.
    let share = switch_overhead_run(8, CopyStrategy::ValidOnly, SHARE, 5, 11);
    let flush = switch_overhead_run(8, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 5, 11);
    assert!(share.ledger.mean_total() < flush.ledger.mean_total());
    assert!(share.drops > 0);
    assert_eq!(flush.drops, 0);
}
