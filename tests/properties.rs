//! End-to-end randomized robustness: arbitrary workload mixes, quanta and
//! seeds — the gang-flush switch never loses a packet and always leaves
//! the system clean. This is the property behind the paper's "withstood
//! thorough testing without packet loss".

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use gang_comm::switcher::CopyStrategy;
use proptest::prelude::*;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;

fn run_case(
    quantum_ms: u64,
    msg_a: u64,
    msg_b: u64,
    count: u64,
    copy_full: bool,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(quantum_ms);
    cfg.copy = if copy_full {
        CopyStrategy::Full
    } else {
        CopyStrategy::ValidOnly
    };
    cfg.seed = seed;
    let mut sim = Sim::new(cfg);
    let a = P2pBandwidth::with_count(msg_a, count);
    let b = P2pBandwidth::with_count(msg_b, count);
    sim.submit(&a, Some(vec![0, 1])).unwrap();
    sim.submit(&b, Some(vec![2, 3])).unwrap();
    // A third job sharing nodes with the first forces rotation.
    let c = P2pBandwidth::with_count(msg_a, count);
    sim.submit(&c, Some(vec![0, 1])).unwrap();
    let done = sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60));
    prop_assert!(done, "jobs did not finish");
    let w = sim.world();
    prop_assert_eq!(w.stats.drops, 0);
    for n in &w.nodes {
        prop_assert_eq!(n.nic.send_q_occupancy(), 0);
        prop_assert_eq!(n.nic.recv_q_occupancy(), 0);
        prop_assert!(n.backing.is_empty());
        for p in n.apps.values() {
            prop_assert_eq!(p.fm.gaps, 0);
            if p.rank == 1 {
                prop_assert_eq!(p.fm.stats.msgs_received, count);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full cluster simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_mixes_never_lose_packets(
        quantum_ms in 10u64..60,
        msg_a in 1u64..20_000,
        msg_b in 1u64..20_000,
        count in 50u64..400,
        copy_full in any::<bool>(),
        seed in any::<u64>(),
    ) {
        run_case(quantum_ms, msg_a, msg_b, count, copy_full, seed)?;
    }
}
