//! End-to-end randomized robustness: arbitrary workload mixes, quanta and
//! seeds — the gang-flush switch never loses a packet and always leaves
//! the system clean. This is the property behind the paper's "withstood
//! thorough testing without packet loss".

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use gang_comm::switcher::CopyStrategy;
use proptest::prelude::*;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;
use workloads::ring::Ring;

fn run_case(
    quantum_ms: u64,
    msg_a: u64,
    msg_b: u64,
    count: u64,
    copy_full: bool,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(quantum_ms);
    cfg.copy = if copy_full {
        CopyStrategy::Full
    } else {
        CopyStrategy::ValidOnly
    };
    cfg.seed = seed;
    let mut sim = Sim::new(cfg);
    let a = P2pBandwidth::with_count(msg_a, count);
    let b = P2pBandwidth::with_count(msg_b, count);
    sim.submit(&a, Some(vec![0, 1])).unwrap();
    sim.submit(&b, Some(vec![2, 3])).unwrap();
    // A third job sharing nodes with the first forces rotation.
    let c = P2pBandwidth::with_count(msg_a, count);
    sim.submit(&c, Some(vec![0, 1])).unwrap();
    let done = sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60));
    prop_assert!(done, "jobs did not finish");
    let w = sim.world();
    prop_assert_eq!(w.stats.drops, 0);
    for n in &w.nodes {
        prop_assert_eq!(n.nic.send_q_occupancy(), 0);
        prop_assert_eq!(n.nic.recv_q_occupancy(), 0);
        prop_assert!(n.backing.is_empty());
        for p in n.apps.values() {
            prop_assert_eq!(p.fm.gaps, 0);
            if p.rank == 1 {
                prop_assert_eq!(p.fm.stats.msgs_received, count);
            }
        }
    }
    Ok(())
}

/// Everything the paper measures, folded into one comparable fingerprint.
/// The engine's physical clock is deliberately absent: in batch mode the
/// final clock may rest at the start of the last run-ahead window (a
/// documented deferred-bus artifact), while every logical observable —
/// including the finish timestamps themselves — is exact. The last field
/// is [`Sim::logical_fingerprint`], the one-word digest benchmarks pin.
type Fingerprint = (u64, Vec<(u32, u64)>, Vec<u64>, u64, u64, u64, u64);

/// Run one arbitrary job mix with the given burst batch size and worker
/// thread count, and collect every observable the burst fast path and the
/// windowed parallel engine must preserve: the logical event stream
/// length, per-job finish times, per-process message counts, switches,
/// retransmits, drops, and the folded logical fingerprint.
#[allow(clippy::too_many_arguments)]
fn burst_fingerprint(
    batch: usize,
    threads: usize,
    quantum_ms: u64,
    msg_a: u64,
    msg_ring: u64,
    count: u64,
    policy: BufferPolicy,
    reliability: bool,
    seed: u64,
) -> Fingerprint {
    let mut cfg = ClusterConfig::parpar(4, 2, policy);
    cfg.quantum = Cycles::from_ms(quantum_ms);
    cfg.seed = seed;
    cfg.batch = batch;
    cfg.threads = threads;
    cfg.reliability.enabled = reliability;
    let mut sim = Sim::new(cfg);
    // A unidirectional stream (bursts engage hard), a ring sharing its
    // nodes (bidirectional: the receiver's send path is busy — the widened
    // multi-context regime), and a second stream forcing rotation.
    let a = P2pBandwidth::with_count(msg_a, count);
    let ring = Ring {
        nprocs: 4,
        msg_bytes: msg_ring,
        laps: 3,
    };
    let mut jobs = [
        sim.submit(&a, Some(vec![0, 1])).unwrap(),
        sim.submit(&ring, Some(vec![0, 1, 2, 3])).unwrap(),
        sim.submit(&a, Some(vec![2, 3])).unwrap(),
    ];
    jobs.sort();
    assert!(
        sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(120)),
        "jobs did not finish"
    );
    let w = sim.world();
    let finishes = jobs
        .iter()
        .map(|j| (j.0, w.stats.job_finished[j].raw()))
        .collect();
    let mut msgs: Vec<u64> = Vec::new();
    for n in &w.nodes {
        for p in n.apps.values() {
            msgs.push(p.fm.stats.msgs_received);
        }
    }
    msgs.sort_unstable();
    (
        sim.engine.logical_events(),
        finishes,
        msgs,
        w.stats.switches,
        w.stats.retransmits,
        w.stats.drops,
        sim.logical_fingerprint(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full cluster simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_mixes_never_lose_packets(
        quantum_ms in 10u64..60,
        msg_a in 1u64..20_000,
        msg_b in 1u64..20_000,
        count in 50u64..400,
        copy_full in any::<bool>(),
        seed in any::<u64>(),
    ) {
        run_case(quantum_ms, msg_a, msg_b, count, copy_full, seed)?;
    }

    /// The burst fast path and the windowed parallel engine are invisible,
    /// separately and composed: any workload/config mix — all four buffer
    /// policies, quanta, reliability on or off, bidirectional traffic with
    /// busy receive-side send paths — produces the same logical event
    /// stream and the same stats at every (batch, threads) corner of the
    /// matrix. (CachedEndpoints declines the fused loop, so there it
    /// checks the deferred-bus generic path instead; Demand exercises the
    /// fused loop's demand-aware refill-crossing prediction; ineligible
    /// threaded configs fall back to the sequential engine, which must be
    /// equally invisible.)
    #[test]
    fn burst_on_equals_burst_off(
        batch in 2usize..32,
        quantum_ms in 10u64..60,
        msg_a in 1u64..65_536,
        msg_ring in 1u64..32_768,
        count in 30u64..250,
        policy_idx in 0usize..4,
        reliability in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let policy = [
            BufferPolicy::StaticDivision,
            BufferPolicy::FullBuffer,
            BufferPolicy::CachedEndpoints,
            BufferPolicy::Demand,
        ][policy_idx];
        let base = burst_fingerprint(
            0, 1, quantum_ms, msg_a, msg_ring, count, policy, reliability, seed,
        );
        for (b, threads) in [(batch, 1), (0, 2), (batch, 2), (batch, 8)] {
            let run = burst_fingerprint(
                b, threads, quantum_ms, msg_a, msg_ring, count, policy, reliability, seed,
            );
            prop_assert_eq!(
                &base, &run,
                "batch={} threads={} diverged from batch=0 threads=1", b, threads,
            );
        }
    }

    /// Disjoint node sets are where the windowed engine actually shards:
    /// with batch on, eligible configurations must both *engage* the
    /// driver (`parallel_windows() > 0`) and reproduce the sequential
    /// batched run's logical stream at threads 2 and 8.
    #[test]
    fn windowed_batch_disjoint_shards(
        batch in 2usize..32,
        msg in 1u64..32_768,
        count in 50u64..300,
        policy_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let policy = [
            BufferPolicy::StaticDivision,
            BufferPolicy::FullBuffer,
            BufferPolicy::CachedEndpoints,
            BufferPolicy::Demand,
        ][policy_idx];
        let run = |threads: usize| {
            let mut cfg = ClusterConfig::parpar(8, 1, policy);
            cfg.auto_rotate = false;
            cfg.seed = seed;
            cfg.batch = batch;
            cfg.threads = threads;
            let mut sim = Sim::new(cfg);
            let bench = P2pBandwidth::with_count(msg, count);
            for pair in [[0usize, 1], [2, 3], [4, 5], [6, 7]] {
                sim.submit(&bench, Some(pair.to_vec())).unwrap();
            }
            let done = sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(120));
            (
                done,
                sim.logical_fingerprint(),
                sim.engine.logical_events(),
                sim.parallel_windows(),
                sim.windows_ineligible(),
            )
        };
        let seq = run(1);
        prop_assert!(seq.0, "sequential batched run did not finish");
        for threads in [2usize, 8] {
            let par = run(threads);
            prop_assert!(par.0, "threads={} run did not finish", threads);
            prop_assert_eq!(par.1, seq.1, "threads={} logical fingerprint", threads);
            prop_assert_eq!(par.2, seq.2, "threads={} logical events", threads);
            if par.4.is_none() {
                prop_assert!(
                    par.3 > 0,
                    "threads={} eligible (batch={}) but never windowed", threads, batch,
                );
            }
        }
    }
}
