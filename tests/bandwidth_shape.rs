//! Shape assertions for the paper's bandwidth results (Figs. 5 and 6).
//!
//! We do not pin absolute MB/s values (the substrate is a calibrated
//! simulator, not the authors' testbed); we assert the *relations* the
//! paper's argument rests on: the quadratic credit collapse under static
//! division, communication death at high context counts, and flatness of
//! total bandwidth in the number of gang-scheduled jobs.

use cluster::measure::Measurement;
use sim_core::time::Cycles;

#[test]
fn fig5_bandwidth_collapses_monotonically_with_contexts() {
    let sizes = [1024u64, 65536];
    for &sz in &sizes {
        let count = if sz <= 1024 { 800 } else { 150 };
        let mut prev = f64::INFINITY;
        for n in [1usize, 2, 4, 6] {
            let c = Measurement::fig5(n, sz, count).seed(42).run();
            assert!(
                c.mbps <= prev * 1.02,
                "bandwidth rose from {prev} to {} at n={n}, size {sz}",
                c.mbps
            );
            assert!(c.mbps > 0.0, "n={n} should still communicate");
            prev = c.mbps;
        }
    }
}

#[test]
fn fig5_collapse_is_severe_not_gentle() {
    // Paper: "the bandwidth decreases sharply when increasing the number
    // of contexts". n=6 must lose most of the n=1 bandwidth.
    let full = Measurement::fig5(1, 65536, 150).seed(42).run();
    let divided = Measurement::fig5(6, 65536, 150).seed(42).run();
    assert!(
        divided.mbps < full.mbps / 2.5,
        "collapse too gentle: {} vs {}",
        divided.mbps,
        full.mbps
    );
}

#[test]
fn fig5_communication_dies_by_seven_contexts() {
    // With the published constants the credit formula floors to zero at
    // n = 7 (the paper reports the cutoff at 8; see EXPERIMENTS.md).
    for n in [7usize, 8] {
        let c = Measurement::fig5(n, 4096, 20).seed(42).run();
        assert_eq!(c.credits, 0, "n={n}");
        assert!(!c.completed);
        assert_eq!(c.mbps, 0.0);
    }
}

#[test]
fn fig5_small_messages_waste_credits() {
    // "For small message sizes, a full credit is used even if only part of
    // each packet is used": 64 B messages get a small fraction of the
    // 64 KB bandwidth.
    let small = Measurement::fig5(1, 64, 2000).seed(42).run();
    let large = Measurement::fig5(1, 65536, 150).seed(42).run();
    assert!(
        small.mbps * 3.0 < large.mbps,
        "{} vs {}",
        small.mbps,
        large.mbps
    );
}

#[test]
fn fig6_total_bandwidth_flat_in_job_count() {
    // The paper's headline (Fig. 6): "the overall available bandwidth is
    // independent of the number of applications running in the system".
    let quantum = Cycles::from_ms(100);
    let dur = Cycles::from_ms(400);
    let one = Measurement::fig6(1, 24576, quantum, dur).seed(42).run();
    for k in [2usize, 4, 6] {
        let cell = Measurement::fig6(k, 24576, quantum, dur).seed(42).run();
        let ratio = cell.total_mbps / one.total_mbps;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "k={k}: total {} vs single-job {} (ratio {ratio})",
            cell.total_mbps,
            one.total_mbps
        );
        assert!(cell.switches > 0, "k={k} never switched");
    }
}

#[test]
fn fig6_jobs_share_fairly() {
    let cell = Measurement::fig6(4, 24576, Cycles::from_ms(100), Cycles::from_ms(800))
        .seed(42)
        .run();
    let mean: f64 = cell.per_job_mbps.iter().sum::<f64>() / 4.0;
    for (i, &bw) in cell.per_job_mbps.iter().enumerate() {
        assert!(
            (bw - mean).abs() < mean * 0.35,
            "job {i} got {bw} vs mean {mean}"
        );
    }
}

#[test]
fn fig6_full_buffer_credits_beat_static_division_by_n_squared() {
    // The credit arithmetic behind the whole paper (§3.3).
    let k = 6usize;
    let static_c = Measurement::fig5(k, 1024, 10).seed(1).run().credits;
    let full_c = Measurement::fig6(1, 1024, Cycles::from_ms(50), Cycles::from_ms(50))
        .seed(1)
        .run()
        .credits;
    assert_eq!(full_c, 41);
    assert!(full_c >= static_c * k * k, "{full_c} vs {static_c}");
}

#[test]
fn gang_scheme_sustains_bandwidth_where_static_division_dies() {
    // The cross-scheme comparison at the paper's breaking point: 7+
    // time-sliced applications.
    let dead = Measurement::fig5(7, 24576, 50).seed(42).run();
    assert_eq!(dead.mbps, 0.0);
    let alive = Measurement::fig6(7, 24576, Cycles::from_ms(100), Cycles::from_ms(400))
        .seed(42)
        .run();
    assert!(
        alive.total_mbps > 50.0,
        "buffer switching should sustain full bandwidth, got {}",
        alive.total_mbps
    );
}
