//! Virtual-networks endpoint caching (paper §5): demand-faulted NIC
//! endpoints with LRU eviction, decoupled from process scheduling —
//! compared against the paper's proactive buffer switch.

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;

fn vn_cfg(nodes: usize, cache_slots: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::parpar(nodes, 4, BufferPolicy::CachedEndpoints);
    cfg.fm.max_contexts = cache_slots;
    cfg.quantum = Cycles::from_ms(25);
    cfg
}

#[test]
fn jobs_beyond_the_cache_fault_in_and_complete() {
    // 3 jobs, 2 cache slots: the third job starts in backing store and
    // faults its endpoints in on first use; rotation churns them.
    let mut sim = Sim::new(vn_cfg(2, 2));
    let bench = P2pBandwidth::with_count(4096, 800);
    for _ in 0..3 {
        sim.submit(&bench, Some(vec![0, 1])).unwrap();
    }
    assert!(
        sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)),
        "VN-cached jobs did not finish"
    );
    let w = sim.world();
    let faults: u64 = w.nodes.iter().map(|n| n.faults).sum();
    assert!(faults > 0, "three jobs over two slots must fault");
    // Every receiver got every message (parking preserved them).
    for n in &w.nodes {
        for p in n.apps.values() {
            if p.rank == 1 {
                assert_eq!(p.fm.stats.msgs_received, 800);
            }
            assert_eq!(p.fm.gaps, 0, "VN run lost packets");
        }
    }
    assert_eq!(w.stats.drops, 0, "parking should absorb all arrivals here");
}

#[test]
fn cache_hits_avoid_faults() {
    // 2 jobs, 2 slots: everything stays resident — zero faults.
    let mut sim = Sim::new(vn_cfg(2, 2));
    let bench = P2pBandwidth::with_count(4096, 500);
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    let w = sim.world();
    let faults: u64 = w.nodes.iter().map(|n| n.faults).sum();
    assert_eq!(faults, 0);
    assert_eq!(w.stats.drops, 0);
}

#[test]
fn thrash_grows_with_jobs_over_slots() {
    // The cost of decoupling from the scheduler: more jobs than cache
    // slots means every rotation faults.
    let run = |jobs: usize| -> u64 {
        let mut cfg = vn_cfg(2, 2);
        cfg.slots = jobs.max(4);
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(2048, u64::MAX / 4);
        for _ in 0..jobs {
            sim.submit(&bench, Some(vec![0, 1])).unwrap();
        }
        sim.run_until(SimTime::ZERO + Cycles::from_ms(400));
        sim.world().nodes.iter().map(|n| n.faults).sum()
    };
    let fits = run(2);
    let thrash = run(4);
    assert_eq!(fits, 0);
    assert!(
        thrash > 4,
        "4 jobs over 2 slots should thrash, got {thrash}"
    );
}

#[test]
fn vn_pays_faults_where_gang_switch_pays_copies() {
    // Same multiprogrammed load under the paper's scheme vs VN caching
    // with one cache slot: both complete; VN's copies happen reactively
    // (counted as faults), the paper's proactively (counted as switches).
    let bench = P2pBandwidth::with_count(4096, 600);

    let mut gang_cfg = ClusterConfig::parpar(2, 2, BufferPolicy::FullBuffer);
    gang_cfg.quantum = Cycles::from_ms(25);
    let mut gang = Sim::new(gang_cfg);
    gang.submit(&bench, Some(vec![0, 1])).unwrap();
    gang.submit(&bench, Some(vec![0, 1])).unwrap();
    assert!(gang.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));

    let mut vn = Sim::new(vn_cfg(2, 1));
    vn.submit(&bench, Some(vec![0, 1])).unwrap();
    vn.submit(&bench, Some(vec![0, 1])).unwrap();
    assert!(vn.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));

    let gang_w = gang.world();
    let vn_w = vn.world();
    assert!(gang_w.stats.switches > 0);
    assert_eq!(gang_w.nodes.iter().map(|n| n.faults).sum::<u64>(), 0);
    assert!(vn_w.nodes.iter().map(|n| n.faults).sum::<u64>() > 0);
}
