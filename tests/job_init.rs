//! Paper Fig. 2: the job-initialization protocol.
//!
//! Verifies the sequence masterd → noded → process → LANai: contexts are
//! ready to receive before the fork completes, the masterd collects all
//! ProcStarted notifications before broadcasting AllUp, and no process
//! starts sending before the global synchronization point.

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use fastmsg::init::InitMode;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;

fn run_init(mode: InitMode, nodes: usize) -> (Sim, parpar::job::JobId) {
    let mut cfg = ClusterConfig::parpar(nodes, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = false;
    cfg.init_mode = mode;
    cfg.trace_capacity = 4096;
    // Daemon jitter off: init-latency comparisons must not depend on luck.
    cfg.host_costs = hostsim::costs::HostCosts::deterministic();
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(1024, 10);
    let job = sim.submit(&bench, Some(vec![0, 1])).unwrap();
    (sim, job)
}

#[test]
fn all_up_happens_before_any_send() {
    let (mut sim, job) = run_init(InitMode::ParPar, 4);
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(5)));
    let w = sim.world();
    let all_up = w.stats.job_all_up[&job];
    let first_send = w.stats.job_first_send[&job];
    assert!(
        first_send > all_up,
        "a process sent ({first_send:?}) before the sync point ({all_up:?})"
    );
}

#[test]
fn context_is_receive_ready_before_fork_completes() {
    // COMM_init_job allocates the context before the fork (paper §3.2), so
    // the NIC can accept packets for a process that has not mapped its
    // queues yet. We verify the context exists as soon as LoadJob ran.
    let mut cfg = ClusterConfig::parpar(2, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = false;
    cfg.host_costs = hostsim::costs::HostCosts::deterministic();
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(1024, 10);
    let job = sim.submit(&bench, Some(vec![0, 1])).unwrap();
    // Without jitter the noded acts ~0.55 ms after submission; the fork
    // costs 800 µs more. At 1 ms the context must exist on both nodes while
    // the job is still loading.
    sim.run_until(SimTime::ZERO + Cycles::from_ms(1));
    let w = sim.world();
    assert!(!w.stats.job_all_up.contains_key(&job), "job already all-up");
    for node in [0usize, 1] {
        assert_eq!(
            w.nodes[node].nic.resident_contexts().count(),
            1,
            "node {node} context not allocated early"
        );
    }
}

#[test]
fn job_completes_under_both_init_modes() {
    for mode in [InitMode::ParPar, InitMode::OriginalFm] {
        let (mut sim, job) = run_init(mode, 4);
        assert!(
            sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(5)),
            "{mode:?} did not complete"
        );
        assert!(sim.world().stats.job_finished.contains_key(&job));
    }
}

#[test]
fn parpar_integration_starts_jobs_faster_than_stock_fm() {
    // The integration's point in §3.2: IDs come from environment variables,
    // eliminating "costly communication operations when a process is
    // started".
    let mut t = Vec::new();
    for mode in [InitMode::ParPar, InitMode::OriginalFm] {
        let (mut sim, job) = run_init(mode, 4);
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(5)));
        t.push(sim.world().stats.job_first_send[&job]);
    }
    assert!(
        t[0] < t[1],
        "ParPar init ({:?}) should beat stock FM init ({:?})",
        t[0],
        t[1]
    );
}

#[test]
fn trace_records_the_fig2_sequence() {
    let (mut sim, _job) = run_init(InitMode::ParPar, 2);
    sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(5));
    let w = sim.world();
    let gang: Vec<String> = w
        .trace
        .by_category(sim_core::trace::Category::Gang)
        .map(|r| r.msg.clone())
        .collect();
    let pos = |needle: &str| {
        gang.iter()
            .position(|m| m.contains(needle))
            .unwrap_or_else(|| panic!("trace lacks '{needle}': {gang:?}"))
    };
    let loaded = pos("loaded job");
    let all_up = pos("all up");
    let sync = pos("sync byte written");
    assert!(loaded < all_up && all_up < sync);
}

#[test]
fn sixteen_node_job_loads_everywhere() {
    let mut cfg = ClusterConfig::parpar(16, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = false;
    let mut sim = Sim::new(cfg);
    let a2a = workloads::alltoall::AllToAll {
        nprocs: 16,
        msg_bytes: 512,
        burst: 2,
        rounds: Some(2),
    };
    let job = sim.submit(&a2a, None).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(10)));
    let w = sim.world();
    assert!(w.stats.job_finished.contains_key(&job));
    // Every node hosted exactly one rank and saw traffic.
    for n in &w.nodes {
        assert_eq!(n.apps.len(), 1);
        assert!(n.nic.stats.data_sent > 0);
        assert!(n.nic.stats.data_received > 0);
    }
}
