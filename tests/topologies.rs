//! The protocols only assume per-route FIFO and halt-after-data; verify
//! the whole stack — flush, switch, collectives — on a multi-hop
//! dual-switch interconnect with trunk contention.

use cluster::{ClusterConfig, Sim, TopologyKind};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use workloads::alltoall::AllToAll;
use workloads::p2p::P2pBandwidth;

#[test]
fn cross_trunk_p2p_completes_with_switches() {
    let mut cfg = ClusterConfig::parpar(8, 2, BufferPolicy::FullBuffer);
    cfg.topology = TopologyKind::DualSwitch { trunks: 1 };
    cfg.quantum = Cycles::from_ms(25);
    let mut sim = Sim::new(cfg);
    // Nodes 0 and 7 sit on different switches: every packet crosses the
    // trunk.
    let bench = P2pBandwidth::with_count(8192, 800);
    sim.submit(&bench, Some(vec![0, 7])).unwrap();
    sim.submit(&bench, Some(vec![0, 7])).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    let w = sim.world();
    assert!(w.stats.switches > 2);
    assert_eq!(w.stats.drops, 0);
    for n in &w.nodes {
        for p in n.apps.values() {
            assert_eq!(p.fm.gaps, 0);
            if p.rank == 1 {
                assert_eq!(p.fm.stats.msgs_received, 800);
            }
        }
    }
}

#[test]
fn all_to_all_over_a_contended_trunk_flushes_cleanly() {
    let mut cfg = ClusterConfig::parpar(8, 2, BufferPolicy::FullBuffer);
    cfg.topology = TopologyKind::DualSwitch { trunks: 1 };
    cfg.quantum = Cycles::from_ms(40);
    let mut sim = Sim::new(cfg);
    let a = AllToAll {
        nprocs: 8,
        msg_bytes: 1536,
        burst: 6,
        rounds: Some(60),
    };
    let all: Vec<usize> = (0..8).collect();
    sim.submit(&a, Some(all.clone())).unwrap();
    sim.submit(&a, Some(all)).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(120)));
    let w = sim.world();
    assert_eq!(w.stats.drops, 0);
    let expect = 60 * 6 * 7;
    for n in &w.nodes {
        for p in n.apps.values() {
            assert_eq!(p.fm.stats.msgs_received, expect);
        }
    }
}

#[test]
fn trunk_contention_caps_cross_traffic_bandwidth() {
    // Two concurrent cross-trunk streams share one 160 MB/s trunk; two
    // same-side streams do not. The same jobs on a single switch are
    // unconstrained.
    let run = |topology: TopologyKind, pairs: [(usize, usize); 3]| -> f64 {
        let mut cfg = ClusterConfig::parpar(8, 1, BufferPolicy::FullBuffer);
        cfg.topology = topology;
        cfg.auto_rotate = false;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(65536, 150);
        let mut jobs = Vec::new();
        for (a, b) in pairs {
            jobs.push(sim.submit(&bench, Some(vec![a, b])).unwrap());
        }
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(30)));
        let w = sim.world();
        jobs.iter()
            .map(|j| w.stats.job_bandwidth_mbps(*j, 65536 * 150).unwrap())
            .sum()
    };
    let dual = TopologyKind::DualSwitch { trunks: 1 };
    // Cross-trunk: three ~74 MB/s streams squeeze through one 160 MB/s
    // trunk link.
    let cross = run(dual, [(0, 4), (1, 5), (2, 6)]);
    // Same-side: no shared link — each stream runs at host speed.
    let local = run(dual, [(0, 1), (2, 3), (4, 5)]);
    assert!(
        cross < local * 0.85,
        "trunk contention should bite: cross {cross} vs local {local}"
    );
    // And the trunk carries at most its wire rate.
    assert!(cross < 165.0, "{cross} exceeds the trunk");
}
