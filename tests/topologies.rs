//! The protocols only assume per-route FIFO and halt-after-data; verify
//! the whole stack — flush, switch, collectives — on a multi-hop
//! dual-switch interconnect with trunk contention.

use cluster::{ClusterConfig, ControlPlane, FatTreeShape, LinkTier, Sim, TopologyKind};
use fastmsg::division::BufferPolicy;
use hostsim::costs::HostCosts;
use myrinet::topology::Topology;
use sim_core::time::{Cycles, SimTime};
use workloads::alltoall::AllToAll;
use workloads::p2p::P2pBandwidth;

#[test]
fn cross_trunk_p2p_completes_with_switches() {
    let mut cfg = ClusterConfig::parpar(8, 2, BufferPolicy::FullBuffer);
    cfg.topology = TopologyKind::DualSwitch { trunks: 1 };
    cfg.quantum = Cycles::from_ms(25);
    let mut sim = Sim::new(cfg);
    // Nodes 0 and 7 sit on different switches: every packet crosses the
    // trunk.
    let bench = P2pBandwidth::with_count(8192, 800);
    sim.submit(&bench, Some(vec![0, 7])).unwrap();
    sim.submit(&bench, Some(vec![0, 7])).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    let w = sim.world();
    assert!(w.stats.switches > 2);
    assert_eq!(w.stats.drops, 0);
    for n in &w.nodes {
        for p in n.apps.values() {
            assert_eq!(p.fm.gaps, 0);
            if p.rank == 1 {
                assert_eq!(p.fm.stats.msgs_received, 800);
            }
        }
    }
}

#[test]
fn all_to_all_over_a_contended_trunk_flushes_cleanly() {
    let mut cfg = ClusterConfig::parpar(8, 2, BufferPolicy::FullBuffer);
    cfg.topology = TopologyKind::DualSwitch { trunks: 1 };
    cfg.quantum = Cycles::from_ms(40);
    let mut sim = Sim::new(cfg);
    let a = AllToAll {
        nprocs: 8,
        msg_bytes: 1536,
        burst: 6,
        rounds: Some(60),
    };
    let all: Vec<usize> = (0..8).collect();
    sim.submit(&a, Some(all.clone())).unwrap();
    sim.submit(&a, Some(all)).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(120)));
    let w = sim.world();
    assert_eq!(w.stats.drops, 0);
    let expect = 60 * 6 * 7;
    for n in &w.nodes {
        for p in n.apps.values() {
            assert_eq!(p.fm.stats.msgs_received, expect);
        }
    }
}

#[test]
fn trunk_contention_caps_cross_traffic_bandwidth() {
    // Two concurrent cross-trunk streams share one 160 MB/s trunk; two
    // same-side streams do not. The same jobs on a single switch are
    // unconstrained.
    let run = |topology: TopologyKind, pairs: [(usize, usize); 3]| -> f64 {
        let mut cfg = ClusterConfig::parpar(8, 1, BufferPolicy::FullBuffer);
        cfg.topology = topology;
        cfg.auto_rotate = false;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(65536, 150);
        let mut jobs = Vec::new();
        for (a, b) in pairs {
            jobs.push(sim.submit(&bench, Some(vec![a, b])).unwrap());
        }
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(30)));
        let w = sim.world();
        jobs.iter()
            .map(|j| w.stats.job_bandwidth_mbps(*j, 65536 * 150).unwrap())
            .sum()
    };
    let dual = TopologyKind::DualSwitch { trunks: 1 };
    // Cross-trunk: three ~74 MB/s streams squeeze through one 160 MB/s
    // trunk link.
    let cross = run(dual, [(0, 4), (1, 5), (2, 6)]);
    // Same-side: no shared link — each stream runs at host speed.
    let local = run(dual, [(0, 1), (2, 3), (4, 5)]);
    assert!(
        cross < local * 0.85,
        "trunk contention should bite: cross {cross} vs local {local}"
    );
    // And the trunk carries at most its wire rate.
    assert!(cross < 165.0, "{cross} exceeds the trunk");
}

/// Fat-tree routes are a pure function of `(src, dst)`: rebuilding the
/// topology (any simulation seed — construction takes none) yields the
/// same route, so per-pair FIFO holds. Every route is also a valid
/// up-down path: tier profiles are palindromic `E`, `E·A·A·E`, or
/// `E·A·S·S·A·E` depending on locality.
#[test]
fn fat_tree_routes_are_deterministic_up_down_paths() {
    let shape = FatTreeShape::for_hosts(64);
    let a = Topology::fat_tree(shape);
    let b = Topology::fat_tree(shape);
    for src in 0..64 {
        for dst in 0..64 {
            if src == dst {
                continue;
            }
            let ra: Vec<usize> = a.route(src, dst).to_vec();
            let rb: Vec<usize> = b.route(src, dst).to_vec();
            assert_eq!(ra, rb, "route ({src}, {dst}) not deterministic");
            let tiers: Vec<LinkTier> = ra.iter().map(|&l| a.link_tier(l)).collect();
            use LinkTier::{Agg, Edge, Spine};
            match tiers.len() {
                2 => assert_eq!(tiers, [Edge, Edge]),
                4 => assert_eq!(tiers, [Edge, Agg, Agg, Edge]),
                6 => assert_eq!(tiers, [Edge, Agg, Spine, Spine, Agg, Edge]),
                n => panic!("route ({src}, {dst}) has invalid length {n}"),
            }
        }
    }
}

/// Per-tier link counts give the expected bisection structure: with
/// `hosts_per_edge = 8` hosts per edge switch, the edge tier has `2·N`
/// links, and the aggregation and spine tiers each offer the full
/// rearrangeable bisection of the shape.
#[test]
fn fat_tree_bisection_link_counts_per_tier() {
    for n in [64usize, 256, 1024] {
        let shape = FatTreeShape::for_hosts(n);
        let topo = Topology::fat_tree(shape);
        let mut count = [0usize; 3];
        for lid in 0..topo.links().len() {
            match topo.link_tier(lid) {
                LinkTier::Edge => count[0] += 1,
                LinkTier::Agg => count[1] += 1,
                LinkTier::Spine => count[2] += 1,
            }
        }
        assert_eq!(count[0], 2 * n, "edge tier at N = {n}");
        // Each edge switch uplinks to every agg in its pod (one up + one
        // down wire each); each agg uplinks to its spine stripe.
        let aggs = shape.pods * shape.aggs_per_pod;
        assert_eq!(
            count[1],
            2 * shape.edges_per_pod * aggs,
            "agg tier at N = {n}"
        );
        assert_eq!(
            count[2],
            2 * shape.spines * shape.pods,
            "spine tier at N = {n}"
        );
    }
}

/// The degenerate one-pod one-edge fat-tree *is* the single switch: the
/// same workload produces a bit-identical event stream on both, so the
/// p = 16 paper configurations can run on either topology value.
#[test]
fn degenerate_fat_tree_digest_equals_single_switch() {
    let run = |topology: TopologyKind| {
        let mut cfg = ClusterConfig::parpar(16, 2, BufferPolicy::FullBuffer);
        cfg.topology = topology;
        cfg.quantum = Cycles::from_ms(20);
        cfg.seed = 42;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(4096, 400);
        sim.submit(&bench, Some(vec![0, 9])).unwrap();
        sim.submit(&bench, Some(vec![4, 13])).unwrap();
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
        (sim.engine.events_processed(), sim.engine.stream_digest())
    };
    let single = run(TopologyKind::SingleSwitch);
    let degenerate = run(TopologyKind::FatTree {
        shape: FatTreeShape::for_hosts(16),
    });
    assert_eq!(single, degenerate);
}

/// Cross-pod traffic on a fat-tree exercises every tier and arrives
/// intact through gang switches; per-tier traffic shows up in the stats.
#[test]
fn cross_pod_p2p_completes_with_switches() {
    let shape = FatTreeShape::for_hosts(64);
    let mut cfg = ClusterConfig::parpar(64, 2, BufferPolicy::FullBuffer);
    cfg.topology = TopologyKind::FatTree { shape };
    cfg.quantum = Cycles::from_ms(25);
    let mut sim = Sim::new(cfg);
    // Hosts 0 and 63 sit in different pods: six hops through the spine.
    let bench = P2pBandwidth::with_count(8192, 400);
    sim.submit(&bench, Some(vec![0, 63])).unwrap();
    sim.submit(&bench, Some(vec![0, 63])).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    let w = sim.world();
    assert!(w.stats.switches > 2);
    assert_eq!(w.stats.drops, 0);
    for n in &w.nodes {
        for p in n.apps.values() {
            assert_eq!(p.fm.gaps, 0);
            if p.rank == 1 {
                assert_eq!(p.fm.stats.msgs_received, 400);
            }
        }
    }
    let tiers = w.tier_traffic();
    assert!(tiers.packets[0] > 0, "edge tier carried nothing");
    assert!(tiers.packets[1] > 0, "agg tier carried nothing");
    assert!(tiers.packets[2] > 0, "spine tier carried nothing");
    // Cross-pod data climbs agg and spine alike, but flush-protocol
    // broadcasts to same-pod peers turn around at the aggregation tier,
    // so it carries at least as much as the spine.
    assert!(tiers.packets[1] >= tiers.packets[2]);
}

/// The three control planes deliver the same protocol outcomes; their
/// latency ordering is the honest one — a serial unicast loop pays O(N)
/// wire times where the flat multicast pays one, and the combining tree
/// undercuts serial well before N = 64.
#[test]
fn control_planes_agree_and_order_switch_latency_honestly() {
    let run = |control: ControlPlane| {
        let mut cfg = ClusterConfig::parpar(64, 2, BufferPolicy::StaticDivision);
        cfg.topology = TopologyKind::FatTree {
            shape: FatTreeShape::for_hosts(64),
        };
        cfg.control = control;
        cfg.host_costs = HostCosts::deterministic();
        cfg.quantum = Cycles::from_ms(50);
        let mut sim = Sim::new(cfg);
        // Same pair twice: the jobs share nodes, so they must occupy two
        // slots and every quantum actually rotates.
        let bench = P2pBandwidth::with_count(4096, 200);
        sim.submit(&bench, Some(vec![0, 63])).unwrap();
        sim.submit(&bench, Some(vec![0, 63])).unwrap();
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(30)));
        let w = sim.world();
        assert_eq!(w.stats.drops, 0);
        assert!(w.stats.switches > 0);
        assert_eq!(
            w.stats.switch_latency.len(),
            w.stats.switches as usize,
            "one latency sample per completed switch"
        );
        (w.stats.switches, w.stats.mean_switch_latency().unwrap())
    };
    let (_, flat) = run(ControlPlane::Flat);
    let (_, serial) = run(ControlPlane::Serial);
    let (_, tree) = run(ControlPlane::Tree { fanout: 8 });
    assert!(
        serial > flat,
        "serial fan-out must cost more than a single multicast: {serial} vs {flat}"
    );
    assert!(
        tree < serial,
        "the combining tree must beat the serial loop at N = 64: {tree} vs {serial}"
    );
}
