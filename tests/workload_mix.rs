//! A realistic multiprogrammed day on the cluster: irregular, collective
//! and streaming jobs of different sizes gang-scheduled together, with
//! rotation, queued admission, and full conservation checks at the end.

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use workloads::collectives::{AllReduce, Barrier};
use workloads::p2p::P2pBandwidth;
use workloads::pairs::{expected_received, RandomPairs};
use workloads::ring::Ring;

#[test]
fn random_pairs_survive_gang_switches() {
    let mut cfg = ClusterConfig::parpar(8, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(20);
    let mut sim = Sim::new(cfg);
    let all: Vec<usize> = (0..8).collect();
    let pairs = RandomPairs {
        nprocs: 8,
        msg_bytes: 2048,
        rounds: 400,
        seed: 31,
        sync_every: 40,
    };
    sim.submit(&pairs, Some(all.clone())).unwrap();
    sim.submit(&pairs, Some(all)).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    let w = sim.world();
    assert!(w.stats.switches > 2);
    assert_eq!(w.stats.drops, 0);
    for n in &w.nodes {
        for p in n.apps.values() {
            let expect = expected_received(31, 8, p.rank, 400);
            assert_eq!(p.fm.stats.msgs_received, expect, "rank {}", p.rank);
            assert_eq!(p.fm.stats.msgs_sent, 400);
            assert_eq!(p.fm.gaps, 0);
        }
    }
}

#[test]
fn four_way_mixed_day() {
    // Slot stack on 16 nodes: a 16-rank allreduce job, a 16-rank random
    // pairs job, and a slot shared by an 8-rank barrier job + two 2-rank
    // p2p jobs + a 4-rank ring — five jobs, three slots, all finishing.
    let mut cfg = ClusterConfig::parpar(16, 3, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(30);
    let mut sim = Sim::new(cfg);
    let all: Vec<usize> = (0..16).collect();
    sim.submit(
        &AllReduce {
            nprocs: 16,
            msg_bytes: 8192,
            repetitions: 150,
        },
        Some(all.clone()),
    )
    .unwrap();
    sim.submit(
        &RandomPairs {
            nprocs: 16,
            msg_bytes: 1536,
            rounds: 300,
            seed: 5,
            sync_every: 30,
        },
        Some(all),
    )
    .unwrap();
    sim.submit(
        &Barrier {
            nprocs: 8,
            msg_bytes: 64,
            repetitions: 400,
        },
        None, // buddy placement: nodes 0..8 in slot 2
    )
    .unwrap();
    sim.submit(&P2pBandwidth::with_count(16384, 400), Some(vec![8, 9]))
        .unwrap();
    sim.submit(&P2pBandwidth::with_count(16384, 400), Some(vec![10, 11]))
        .unwrap();
    sim.submit(
        &Ring {
            nprocs: 4,
            msg_bytes: 1024,
            laps: 300,
        },
        Some(vec![12, 13, 14, 15]),
    )
    .unwrap();
    assert!(
        sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(120)),
        "mixed day did not finish"
    );
    let w = sim.world();
    assert_eq!(w.stats.job_finished.len(), 6);
    assert_eq!(w.stats.drops, 0);
    assert!(w.stats.switches > 3);
    for n in &w.nodes {
        assert_eq!(n.nic.send_q_occupancy(), 0, "node {}", n.id);
        assert_eq!(n.nic.recv_q_occupancy(), 0, "node {}", n.id);
        assert!(n.backing.is_empty(), "node {}", n.id);
        for p in n.apps.values() {
            assert_eq!(p.fm.gaps, 0);
        }
    }
    // Global packet conservation: everything sent was received.
    let sent: u64 = w.nodes.iter().map(|n| n.nic.stats.data_sent).sum();
    let recvd: u64 = w.nodes.iter().map(|n| n.nic.stats.data_received).sum();
    assert_eq!(sent, recvd);
}
