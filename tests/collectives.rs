//! MPI-style collectives running on the simulated cluster, across gang
//! context switches — the "higher level communication system" usage the
//! paper's integration targets (§3.2).

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use workloads::collectives::{AllReduce, Barrier, Broadcast, Gather};

fn run_two_jobs<W: workloads::program::Workload>(nodes: usize, w: &W) -> Sim {
    let mut cfg = ClusterConfig::parpar(nodes, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(10); // many switches mid-collective
    let mut sim = Sim::new(cfg);
    let all: Vec<usize> = (0..nodes).collect();
    sim.submit(w, Some(all.clone())).unwrap();
    sim.submit(w, Some(all)).unwrap();
    assert!(
        sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)),
        "collectives did not finish"
    );
    sim
}

#[test]
fn barrier_completes_across_switches() {
    let w = Barrier {
        nprocs: 8,
        msg_bytes: 64,
        repetitions: 600,
    };
    let sim = run_two_jobs(8, &w);
    let world = sim.world();
    assert!(world.stats.switches > 3);
    assert_eq!(world.stats.drops, 0);
    for n in &world.nodes {
        for p in n.apps.values() {
            // ceil(log2(8)) = 3 rounds per episode.
            assert_eq!(p.fm.stats.msgs_sent, 1800);
            assert_eq!(p.fm.stats.msgs_received, 1800);
        }
    }
}

#[test]
fn broadcast_tree_delivers_once_per_episode() {
    let w = Broadcast {
        nprocs: 6,
        root: 1,
        msg_bytes: 32 * 1024,
        repetitions: 30,
    };
    let sim = run_two_jobs(6, &w);
    let world = sim.world();
    assert_eq!(world.stats.drops, 0);
    for n in &world.nodes {
        for p in n.apps.values() {
            if p.rank == 1 {
                assert_eq!(p.fm.stats.msgs_received, 0);
            } else {
                assert_eq!(p.fm.stats.msgs_received, 30);
                assert_eq!(p.fm.stats.bytes_received, 30 * 32 * 1024);
            }
        }
    }
}

#[test]
fn allreduce_recursive_doubling_is_symmetric() {
    let w = AllReduce {
        nprocs: 8,
        msg_bytes: 16 * 1024,
        repetitions: 40,
    };
    let sim = run_two_jobs(8, &w);
    let world = sim.world();
    assert_eq!(world.stats.drops, 0);
    for n in &world.nodes {
        for p in n.apps.values() {
            assert_eq!(p.fm.stats.msgs_sent, 40 * 3);
            assert_eq!(p.fm.stats.msgs_received, 40 * 3);
        }
    }
}

#[test]
fn gather_funnels_into_the_root() {
    let w = Gather {
        nprocs: 8,
        root: 0,
        msg_bytes: 1536,
        repetitions: 100,
    };
    let sim = run_two_jobs(8, &w);
    let world = sim.world();
    assert_eq!(world.stats.drops, 0);
    for n in &world.nodes {
        for p in n.apps.values() {
            if p.rank == 0 {
                assert_eq!(p.fm.stats.msgs_received, 700);
            } else {
                assert_eq!(p.fm.stats.msgs_sent, 100);
            }
        }
    }
}

#[test]
fn mixed_collective_jobs_share_the_machine() {
    // A barrier-heavy job and a broadcast-heavy job gang-scheduled
    // together: different traffic shapes through the same switch path.
    let mut cfg = ClusterConfig::parpar(8, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(15);
    let mut sim = Sim::new(cfg);
    let all: Vec<usize> = (0..8).collect();
    sim.submit(
        &Barrier {
            nprocs: 8,
            msg_bytes: 64,
            repetitions: 800,
        },
        Some(all.clone()),
    )
    .unwrap();
    sim.submit(
        &Broadcast {
            nprocs: 8,
            root: 0,
            msg_bytes: 64 * 1024,
            repetitions: 120,
        },
        Some(all),
    )
    .unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    assert_eq!(sim.world().stats.drops, 0);
    assert!(sim.world().stats.switches > 2);
}
