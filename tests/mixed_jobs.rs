//! Jobs of different sizes sharing slots — "several parallel applications
//! can run in the same slot, as long as the sum of nodes they require
//! does not exceed the total number of nodes" (paper §2.1) — and
//! switches between slots with *partial* node coverage (some nodes have
//! no process in the outgoing or incoming slot).

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;
use workloads::ring::Ring;

#[test]
fn different_sized_jobs_pack_one_slot_and_run_concurrently() {
    let mut cfg = ClusterConfig::parpar(8, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = false;
    let mut sim = Sim::new(cfg);
    // Buddy placement packs these three into slot 0: sizes 4, 2, 2.
    let a = sim
        .submit(
            &Ring {
                nprocs: 4,
                msg_bytes: 256,
                laps: 100,
            },
            None,
        )
        .unwrap();
    let b = sim
        .submit(&P2pBandwidth::with_count(2048, 200), None)
        .unwrap();
    let c = sim
        .submit(&P2pBandwidth::with_count(2048, 200), None)
        .unwrap();
    {
        let w = sim.world();
        let slots: Vec<usize> = [a, b, c]
            .iter()
            .map(|j| w.master.job(*j).unwrap().placement.slot)
            .collect();
        assert_eq!(slots, vec![0, 0, 0], "all three should share slot 0");
    }
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(30)));
    assert_eq!(sim.world().stats.drops, 0);
    assert_eq!(sim.world().stats.job_finished.len(), 3);
}

#[test]
fn switches_with_partial_node_coverage_lose_nothing() {
    // Slot 0: an 8-node ring. Slot 1: a 2-node p2p on nodes {0,1} and a
    // 2-node p2p on nodes {4,5}. During each switch, nodes 2,3,6,7 have
    // no incoming process — they still participate in the flush protocol.
    let mut cfg = ClusterConfig::parpar(8, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(25);
    let mut sim = Sim::new(cfg);
    let all: Vec<usize> = (0..8).collect();
    let ring = sim
        .submit(
            &Ring {
                nprocs: 8,
                msg_bytes: 512,
                laps: 600,
            },
            Some(all),
        )
        .unwrap();
    let p1 = sim
        .submit(&P2pBandwidth::with_count(4096, 800), Some(vec![0, 1]))
        .unwrap();
    let p2 = sim
        .submit(&P2pBandwidth::with_count(4096, 800), Some(vec![4, 5]))
        .unwrap();
    {
        let w = sim.world();
        assert_eq!(w.master.job(ring).unwrap().placement.slot, 0);
        assert_eq!(w.master.job(p1).unwrap().placement.slot, 1);
        assert_eq!(w.master.job(p2).unwrap().placement.slot, 1);
    }
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    let w = sim.world();
    assert!(w.stats.switches > 2, "switches: {}", w.stats.switches);
    assert_eq!(w.stats.drops, 0);
    assert_eq!(w.stats.job_finished.len(), 3);
    for n in &w.nodes {
        assert_eq!(n.nic.send_q_occupancy(), 0);
        assert_eq!(n.nic.recv_q_occupancy(), 0);
        assert!(n.backing.is_empty());
        for p in n.apps.values() {
            assert_eq!(p.fm.gaps, 0);
        }
    }
}

#[test]
fn uncovered_nodes_still_flush_and_report() {
    // A 2-node job alternating with nothing else on a 6-node cluster plus
    // a 2-node job in another slot: nodes 2..5 host nobody, yet every
    // switch needs their halt/ready messages.
    let mut cfg = ClusterConfig::parpar(6, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(20);
    let mut sim = Sim::new(cfg);
    sim.submit(&P2pBandwidth::with_count(1536, 3000), Some(vec![0, 1]))
        .unwrap();
    sim.submit(&P2pBandwidth::with_count(1536, 3000), Some(vec![0, 1]))
        .unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    let w = sim.world();
    assert!(w.stats.switches > 2);
    // Every node (including empty ones) completed every switch.
    for n in &w.nodes {
        assert_eq!(n.noded.switches_done, w.stats.switches, "node {}", n.id);
    }
}
