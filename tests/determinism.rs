//! The simulation is deterministic: identical configuration and seed give
//! bit-identical runs; the figures are exactly reproducible.

use cluster::measure::{fig5_cell, fig6_cell, switch_overhead_run};
use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use gang_comm::strategy::SwitchStrategy;
use gang_comm::switcher::CopyStrategy;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;

#[test]
fn same_seed_same_event_count_and_bandwidth() {
    let run = || {
        let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
        cfg.quantum = Cycles::from_ms(30);
        cfg.seed = 77;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(4096, 500);
        let j = sim.submit(&bench, Some(vec![0, 1])).unwrap();
        sim.submit(&bench, Some(vec![0, 1])).unwrap();
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
        (
            sim.engine.events_processed(),
            sim.world().stats.job_finished[&j],
            sim.world().stats.switches,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn fig_cells_are_reproducible() {
    let a = fig5_cell(3, 4096, 100, 5);
    let b = fig5_cell(3, 4096, 100, 5);
    assert_eq!(a.mbps.to_bits(), b.mbps.to_bits());

    let a = fig6_cell(2, 1536, Cycles::from_ms(50), Cycles::from_ms(100), 5);
    let b = fig6_cell(2, 1536, Cycles::from_ms(50), Cycles::from_ms(100), 5);
    assert_eq!(a.total_mbps.to_bits(), b.total_mbps.to_bits());

    let a = switch_overhead_run(4, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 3, 5);
    let b = switch_overhead_run(4, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 3, 5);
    assert_eq!(a.ledger.mean_total().to_bits(), b.ledger.mean_total().to_bits());
    assert_eq!(a.queue_samples.len(), b.queue_samples.len());
}

#[test]
fn different_seeds_vary_jitter_but_preserve_shape() {
    let x = switch_overhead_run(8, CopyStrategy::Full, SwitchStrategy::GangFlush, 3, 1);
    let y = switch_overhead_run(8, CopyStrategy::Full, SwitchStrategy::GangFlush, 3, 2);
    // Halt depends on daemon jitter → differs across seeds.
    let (hx, bx, _) = x.ledger.mean_stages();
    let (hy, by, _) = y.ledger.mean_stages();
    assert_ne!(hx.to_bits(), hy.to_bits());
    // The full-copy cost is structural → nearly identical.
    assert!((bx - by).abs() / bx < 0.1, "{bx} vs {by}");
}
