//! The simulation is deterministic: identical configuration and seed give
//! bit-identical runs; the figures are exactly reproducible.

use cluster::measure::{switch_overhead_run, Measurement};
use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use gang_comm::strategy::SwitchStrategy;
use gang_comm::switcher::CopyStrategy;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;
use workloads::ring::Ring;

#[test]
fn same_seed_same_event_count_and_bandwidth() {
    let run = || {
        let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
        cfg.quantum = Cycles::from_ms(30);
        cfg.seed = 77;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(4096, 500);
        let j = sim.submit(&bench, Some(vec![0, 1])).unwrap();
        sim.submit(&bench, Some(vec![0, 1])).unwrap();
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
        (
            sim.engine.events_processed(),
            sim.world().stats.job_finished[&j],
            sim.world().stats.switches,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// Golden digests recorded from the seed engine (BinaryHeap pending queue,
/// monolithic dispatcher) before the event-queue and event-bus refactors.
/// The digest is FNV-1a over the delivered `(time, kind)` stream, so any
/// change to event ordering, timing, or the stable kind mapping in
/// `cluster::event::KIND_NAMES` shows up here. Identical in debug and
/// release builds.
mod golden {
    /// 4 nodes / 2 slots / FullBuffer / 30 ms quantum / seed 77,
    /// two P2pBandwidth(4096 B × 500) jobs pinned to nodes [0, 1].
    pub const FULL_BUFFER_EVENTS: u64 = 18_197;
    pub const FULL_BUFFER_DIGEST: u64 = 0xd76b_ef7d_1b3f_c15a;
    /// 2 nodes / 4 slots / CachedEndpoints (max_contexts 2) / 25 ms
    /// quantum / seed 1234, three P2pBandwidth(4096 B × 800) jobs on [0, 1].
    pub const VN_CACHE_EVENTS: u64 = 43_422;
    pub const VN_CACHE_DIGEST: u64 = 0xb1b5_b5ea_bd1b_8f67;
}

#[test]
fn event_stream_digest_matches_pre_refactor_golden() {
    // Scenario A: gang-scheduled buffer switching.
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(30);
    cfg.seed = 77;
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(4096, 500);
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
    assert_eq!(sim.engine.events_processed(), golden::FULL_BUFFER_EVENTS);
    assert_eq!(sim.engine.stream_digest(), golden::FULL_BUFFER_DIGEST);
    assert_eq!(sim.engine.causality_clamps(), 0);
    // Every event was classified: the per-kind counts sum to the total.
    let counted: u64 = sim.engine.dispatch_counts().map(|(_, c)| c).sum();
    assert_eq!(counted, sim.engine.events_processed());

    // Scenario B: VN endpoint caching with faults.
    let mut cfg = ClusterConfig::parpar(2, 4, BufferPolicy::CachedEndpoints);
    cfg.fm.max_contexts = 2;
    cfg.quantum = Cycles::from_ms(25);
    cfg.seed = 1234;
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(4096, 800);
    for _ in 0..3 {
        sim.submit(&bench, Some(vec![0, 1])).unwrap();
    }
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
    assert_eq!(sim.engine.events_processed(), golden::VN_CACHE_EVENTS);
    assert_eq!(sim.engine.stream_digest(), golden::VN_CACHE_DIGEST);
    assert_eq!(sim.engine.causality_clamps(), 0);
    // Faults occurred, so the fault_done counter is live.
    let faults = sim
        .engine
        .dispatch_counts()
        .find(|(n, _)| *n == "fault_done")
        .map(|(_, c)| c)
        .unwrap();
    assert!(faults > 0, "VN scenario should take endpoint faults");
}

#[test]
fn fig_cells_are_reproducible() {
    let a = Measurement::fig5(3, 4096, 100).seed(5).run();
    let b = Measurement::fig5(3, 4096, 100).seed(5).run();
    assert_eq!(a.mbps.to_bits(), b.mbps.to_bits());

    let a = Measurement::fig6(2, 1536, Cycles::from_ms(50), Cycles::from_ms(100))
        .seed(5)
        .run();
    let b = Measurement::fig6(2, 1536, Cycles::from_ms(50), Cycles::from_ms(100))
        .seed(5)
        .run();
    assert_eq!(a.total_mbps.to_bits(), b.total_mbps.to_bits());

    let a = switch_overhead_run(4, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 3, 5);
    let b = switch_overhead_run(4, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 3, 5);
    assert_eq!(
        a.ledger.mean_total().to_bits(),
        b.ledger.mean_total().to_bits()
    );
    assert_eq!(a.queue_samples.len(), b.queue_samples.len());
}

/// The burst fast path (`--batch=16`) is an engine optimisation, not a model
/// change: every figure cell it produces must be byte-identical to the
/// packet-at-a-time run, across seeds. `f64::to_bits` comparison leaves no
/// room for "close enough".
#[test]
fn batched_fig_cells_match_unbatched_bit_for_bit() {
    for seed in [5, 91, 4242] {
        // Fig. 5 cells: one context (bursts engage) and three contexts
        // (credit pressure, bursts engage rarely) at a multi-fragment size.
        for contexts in [1, 3] {
            let off = Measurement::fig5(contexts, 65_536, 40).seed(seed).run();
            let on = Measurement::fig5(contexts, 65_536, 40)
                .seed(seed)
                .batch(16)
                .run();
            assert_eq!(off.mbps.to_bits(), on.mbps.to_bits(), "seed {seed}");
            assert_eq!(off.completed, on.completed, "seed {seed}");
            assert_eq!(off.credits, on.credits, "seed {seed}");
        }

        // Fig. 6 cell: time-sliced jobs under buffer switching.
        let q = Cycles::from_ms(50);
        let w = Cycles::from_ms(100);
        let off = Measurement::fig6(2, 1536, q, w).seed(seed).run();
        let on = Measurement::fig6(2, 1536, q, w).seed(seed).batch(16).run();
        assert_eq!(off.total_mbps.to_bits(), on.total_mbps.to_bits());
        assert_eq!(off.per_job_mbps.len(), on.per_job_mbps.len());
        for (a, b) in off.per_job_mbps.iter().zip(&on.per_job_mbps) {
            assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
        }
        assert_eq!(off.switches, on.switches, "seed {seed}");

        // Fig. 8 run: all-to-all stress, queue samples at switch time.
        let off = switch_overhead_run(
            4,
            CopyStrategy::ValidOnly,
            SwitchStrategy::GangFlush,
            3,
            seed,
        );
        let on =
            Measurement::switch_overhead(4, CopyStrategy::ValidOnly, SwitchStrategy::GangFlush, 3)
                .seed(seed)
                .batch(16)
                .run();
        assert_eq!(
            off.ledger.mean_total().to_bits(),
            on.ledger.mean_total().to_bits(),
            "seed {seed}"
        );
        assert_eq!(
            off.queue_samples.len(),
            on.queue_samples.len(),
            "seed {seed}"
        );
        for (a, b) in off.queue_samples.iter().zip(&on.queue_samples) {
            assert_eq!(
                (a.node, a.epoch, a.send_valid, a.recv_valid),
                (b.node, b.epoch, b.send_valid, b.recv_valid),
                "seed {seed}"
            );
        }
    }
}

/// On the burst-friendly ring workload the fast path elides most heap
/// events, but the *logical* event stream — heap pops plus inline
/// dispatches — is identical, as are all end-of-run observables.
#[test]
fn burst_fast_path_preserves_logical_event_stream() {
    let run = |batch: usize| {
        let mut cfg = ClusterConfig::parpar(4, 1, BufferPolicy::StaticDivision);
        cfg.auto_rotate = false;
        cfg.seed = 42;
        cfg.batch = batch;
        let mut sim = Sim::new(cfg);
        let w = Ring {
            nprocs: 4,
            msg_bytes: 1 << 20,
            laps: 2,
        };
        let j = sim.submit(&w, Some(vec![0, 1, 2, 3])).unwrap();
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(600)));
        (
            sim.engine.logical_events(),
            sim.world().stats.job_finished[&j],
            sim.world().stats.switches,
        )
    };
    let off = run(0);
    let on = run(16);
    assert_eq!(off, on);
}

/// Every published figure cell must be bit-identical at 1, 2, and 8
/// worker threads, across seeds: `.threads(n)` is an execution strategy,
/// never a model change.
#[test]
fn threaded_fig_cells_match_sequential_bit_for_bit() {
    for seed in [5u64, 91, 4242] {
        for threads in [2usize, 8] {
            // Fig. 5 cells: single-job bandwidth, one and three contexts.
            for contexts in [1, 3] {
                let seq = Measurement::fig5(contexts, 65_536, 40).seed(seed).run();
                let par = Measurement::fig5(contexts, 65_536, 40)
                    .seed(seed)
                    .threads(threads)
                    .run();
                assert_eq!(seq.mbps.to_bits(), par.mbps.to_bits(), "seed {seed}");
                assert_eq!(seq.completed, par.completed, "seed {seed}");
                assert_eq!(seq.credits, par.credits, "seed {seed}");
            }

            // Fig. 6 cell: time-sliced jobs under buffer switching.
            let q = Cycles::from_ms(50);
            let w = Cycles::from_ms(100);
            let seq = Measurement::fig6(2, 1536, q, w).seed(seed).run();
            let par = Measurement::fig6(2, 1536, q, w)
                .seed(seed)
                .threads(threads)
                .run();
            assert_eq!(seq.total_mbps.to_bits(), par.total_mbps.to_bits());
            for (a, b) in seq.per_job_mbps.iter().zip(&par.per_job_mbps) {
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
            }
            assert_eq!(seq.switches, par.switches, "seed {seed}");

            // Fig. 8 run: all-to-all stress, queue samples at switch time.
            let seq = switch_overhead_run(
                4,
                CopyStrategy::ValidOnly,
                SwitchStrategy::GangFlush,
                3,
                seed,
            );
            let par = Measurement::switch_overhead(
                4,
                CopyStrategy::ValidOnly,
                SwitchStrategy::GangFlush,
                3,
            )
            .seed(seed)
            .threads(threads)
            .run();
            assert_eq!(
                seq.ledger.mean_total().to_bits(),
                par.ledger.mean_total().to_bits(),
                "seed {seed}"
            );
            assert_eq!(
                seq.queue_samples.len(),
                par.queue_samples.len(),
                "seed {seed}"
            );
            for (a, b) in seq.queue_samples.iter().zip(&par.queue_samples) {
                assert_eq!(
                    (a.node, a.epoch, a.send_valid, a.recv_valid),
                    (b.node, b.epoch, b.send_valid, b.recv_valid),
                    "seed {seed}"
                );
            }
        }
    }
}

/// The windowed parallel engine (`cfg.threads > 1`) is an execution
/// strategy, not a model change: the committed golden digest must come out
/// of the shard-and-merge path bit-for-bit, at any thread count.
#[test]
fn threaded_run_reproduces_golden_digest() {
    for threads in [2, 8] {
        let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
        cfg.quantum = Cycles::from_ms(30);
        cfg.seed = 77;
        cfg.threads = threads;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(4096, 500);
        sim.submit(&bench, Some(vec![0, 1])).unwrap();
        sim.submit(&bench, Some(vec![0, 1])).unwrap();
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
        assert_eq!(
            sim.engine.events_processed(),
            golden::FULL_BUFFER_EVENTS,
            "threads={threads}"
        );
        assert_eq!(
            sim.engine.stream_digest(),
            golden::FULL_BUFFER_DIGEST,
            "threads={threads}"
        );
    }
}

/// Jobs on disjoint node sets shard into genuinely parallel windows; the
/// merged stream must still match the sequential engine exactly — digest,
/// event count, clock, and per-job stats.
#[test]
fn disjoint_jobs_shard_and_match_sequential() {
    let run = |threads: usize| {
        let mut cfg = ClusterConfig::parpar(8, 1, BufferPolicy::StaticDivision);
        cfg.auto_rotate = false;
        cfg.seed = 913;
        cfg.threads = threads;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(4096, 300);
        let mut jobs = Vec::new();
        for pair in [[0usize, 1], [2, 3], [4, 5], [6, 7]] {
            jobs.push(sim.submit(&bench, Some(pair.to_vec())).unwrap());
        }
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
        if threads > 1 {
            assert!(
                sim.parallel_windows() > 0,
                "threads={threads}: windowed driver never engaged"
            );
        }
        let finishes: Vec<_> = jobs
            .iter()
            .map(|j| sim.world().stats.job_finished[j])
            .collect();
        let bw: Vec<u64> = jobs
            .iter()
            .map(|j| {
                sim.world()
                    .stats
                    .job_bandwidth_mbps(*j, 4096 * 300)
                    .unwrap()
                    .to_bits()
            })
            .collect();
        (
            sim.engine.events_processed(),
            sim.engine.stream_digest(),
            sim.engine.now(),
            finishes,
            bw,
        )
    };
    let seq = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), seq, "threads={threads}");
    }
}

/// Burst trains compose with the windowed parallel engine: on the
/// disjoint-shard scenario with `batch = 16`, the windowed driver engages
/// (`parallel_windows() > 0`), every logical observable matches the
/// sequential batched run bit-for-bit (fingerprint + finish times + event
/// count), and thread counts 2 and 8 produce identical *physical* streams
/// too (the partition does not depend on worker count). The physical
/// digest of the windowed run is allowed to differ from the sequential
/// batched run — a shard's run-ahead limit is its own queue head, so the
/// elision pattern differs; the contract for `batch > 0` is the logical
/// stream.
#[test]
fn batched_windows_match_logical_stream() {
    let run = |threads: usize| {
        let mut cfg = ClusterConfig::parpar(8, 1, BufferPolicy::StaticDivision);
        cfg.auto_rotate = false;
        cfg.seed = 913;
        cfg.threads = threads;
        cfg.batch = 16;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(4096, 300);
        let mut jobs = Vec::new();
        for pair in [[0usize, 1], [2, 3], [4, 5], [6, 7]] {
            jobs.push(sim.submit(&bench, Some(pair.to_vec())).unwrap());
        }
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
        if threads > 1 {
            assert!(
                sim.parallel_windows() > 0,
                "threads={threads}: windowed driver never engaged with batch on"
            );
        }
        let finishes: Vec<_> = jobs
            .iter()
            .map(|j| sim.world().stats.job_finished[j])
            .collect();
        (
            sim.logical_fingerprint(),
            sim.engine.logical_events(),
            sim.engine.now(),
            finishes,
            sim.engine.stream_digest(),
        )
    };
    let seq = run(1);
    let t2 = run(2);
    let t8 = run(8);
    // Logical contract: everything except the physical digest matches the
    // sequential batched run.
    assert_eq!(t2.0, seq.0, "threads=2 logical fingerprint");
    assert_eq!(t2.1, seq.1, "threads=2 logical events");
    assert_eq!(t2.2, seq.2, "threads=2 clock");
    assert_eq!(t2.3, seq.3, "threads=2 finish times");
    // Physical contract between windowed runs: worker count is invisible.
    assert_eq!(t8, t2, "threads=8 vs threads=2 full stream");
}

/// The batched windowed run preserves the *unbatched* logical stream too:
/// batch and threads are both pure execution strategies, so all four
/// (batch, threads) corners agree on the logical fingerprint.
#[test]
fn batch_threads_matrix_shares_one_logical_stream() {
    let run = |threads: usize, batch: usize| {
        let mut cfg = ClusterConfig::parpar(8, 1, BufferPolicy::StaticDivision);
        cfg.auto_rotate = false;
        cfg.seed = 4177;
        cfg.threads = threads;
        cfg.batch = batch;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(4096, 200);
        for pair in [[0usize, 1], [2, 3], [4, 5], [6, 7]] {
            sim.submit(&bench, Some(pair.to_vec())).unwrap();
        }
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
        (sim.logical_fingerprint(), sim.engine.logical_events())
    };
    let base = run(1, 0);
    for threads in [1usize, 2, 8] {
        for batch in [0usize, 16] {
            assert_eq!(run(threads, batch), base, "threads={threads} batch={batch}");
        }
    }
}

/// Golden *logical fingerprints* per (buffer policy, batch): the one-word
/// determinism contract batched runs pin (DESIGN.md §3i). Each cell must
/// reproduce its committed value at threads 1 and 2 — any change to the
/// logical event stream, job lifecycle timing, or delivered-message
/// accounting shows up here, while physical-stream-only changes (elision
/// patterns) must not. Identical in debug and release builds.
#[test]
fn logical_fingerprint_goldens_per_policy_and_batch() {
    let run = |policy: BufferPolicy, batch: usize, threads: usize| {
        let mut cfg = ClusterConfig::parpar(8, 1, policy);
        cfg.auto_rotate = false;
        cfg.seed = 2025;
        cfg.batch = batch;
        cfg.threads = threads;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(4096, 150);
        for pair in [[0usize, 1], [2, 3], [4, 5], [6, 7]] {
            sim.submit(&bench, Some(pair.to_vec())).unwrap();
        }
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
        sim.logical_fingerprint()
    };
    // Three policies share a value: on disjoint one-slot pairs the NIC
    // memory scheme does not change any logical observable, only Demand's
    // credit-window sizing moves packet timing. That collapse is itself
    // part of the golden.
    let goldens: &[(BufferPolicy, u64)] = &[
        (BufferPolicy::StaticDivision, 0xdac4_d486_6096_8900),
        (BufferPolicy::FullBuffer, 0xdac4_d486_6096_8900),
        (BufferPolicy::CachedEndpoints, 0xdac4_d486_6096_8900),
        (BufferPolicy::Demand, 0x2290_ddc6_eb19_4988),
    ];
    for &(policy, want) in goldens {
        for batch in [0usize, 16] {
            for threads in [1usize, 2] {
                assert_eq!(
                    run(policy, batch, threads),
                    want,
                    "{policy:?} batch={batch} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn different_seeds_vary_jitter_but_preserve_shape() {
    let x = switch_overhead_run(8, CopyStrategy::Full, SwitchStrategy::GangFlush, 3, 1);
    let y = switch_overhead_run(8, CopyStrategy::Full, SwitchStrategy::GangFlush, 3, 2);
    // Halt depends on daemon jitter → differs across seeds.
    let (hx, bx, _) = x.ledger.mean_stages();
    let (hy, by, _) = y.ledger.mean_stages();
    assert_ne!(hx.to_bits(), hy.to_bits());
    // The full-copy cost is structural → nearly identical.
    assert!((bx - by).abs() / bx < 0.1, "{bx} vs {by}");
}
