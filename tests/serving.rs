//! Serving-cluster mode end to end: open-loop arrivals through the jobrep
//! admission queue, streaming latency percentiles, and the determinism
//! contract — p50/p99/p999 and the logical fingerprint are bit-identical
//! across thread counts and batch settings.

use cluster::measure::{Measurement, SchedulingMode, ServeCell};
use cluster::{ArrivalPlan, ArrivalSpec, ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use proptest::prelude::*;
use sim_core::time::{Cycles, SimTime};

fn gang_cell(threads: usize, batch: usize) -> ServeCell {
    Measurement::serve(8, 2, SchedulingMode::Gang)
        .arrival_rate(3.0)
        .horizon(Cycles::from_secs(3))
        .seed(42)
        .threads(threads)
        .batch(batch)
        .run()
}

fn percentiles(c: &ServeCell) -> [u64; 9] {
    [
        c.wait_p50,
        c.wait_p99,
        c.wait_p999,
        c.service_p50,
        c.service_p99,
        c.service_p999,
        c.e2e_p50,
        c.e2e_p99,
        c.e2e_p999,
    ]
}

#[test]
fn serve_completes_and_records_latencies() {
    let c = gang_cell(1, 0);
    assert!(c.submitted > 0, "{c:?}");
    assert_eq!(c.rejected, 0, "{c:?}");
    assert!(c.drained, "moderate load must drain: {c:?}");
    assert_eq!(c.completed, c.admitted, "{c:?}");
    // Percentiles are monotone within each metric.
    assert!(c.wait_p50 <= c.wait_p99 && c.wait_p99 <= c.wait_p999);
    assert!(c.service_p50 <= c.service_p99 && c.service_p99 <= c.service_p999);
    assert!(c.e2e_p50 <= c.e2e_p99 && c.e2e_p99 <= c.e2e_p999);
    // End-to-end dominates service (e2e = wait + service per job).
    assert!(c.e2e_p50 >= c.service_p50, "{c:?}");
    assert!(c.service_p50 > 0, "jobs take time: {c:?}");
    assert!((0.0..=1.0).contains(&c.slo_attainment));
}

#[test]
fn serve_percentiles_pinned_across_threads_and_batch() {
    // Reliability is on (the serve default), so the windowed engine falls
    // back to the sequential loop — the contract still holds and this pins
    // it at the API level.
    let base = gang_cell(1, 0);
    for (threads, batch) in [(2, 0), (8, 0), (1, 16), (8, 16)] {
        let c = gang_cell(threads, batch);
        assert_eq!(
            percentiles(&base),
            percentiles(&c),
            "threads={threads} batch={batch}"
        );
        assert_eq!(
            base.fingerprint, c.fingerprint,
            "threads={threads} batch={batch}"
        );
        assert_eq!(base.completed, c.completed);
    }
}

#[test]
fn serve_percentiles_pinned_when_window_eligible() {
    // Reliability off + gang + GangFlush: the windowed parallel engine is
    // eligible, so this exercises the JobArrival-closes-windows path.
    let cell = |threads: usize| {
        Measurement::serve(8, 2, SchedulingMode::Gang)
            .arrival_rate(3.0)
            .horizon(Cycles::from_secs(3))
            .reliability(false)
            .seed(7)
            .threads(threads)
            .run()
    };
    let base = cell(1);
    for threads in [2, 8] {
        let c = cell(threads);
        assert_eq!(percentiles(&base), percentiles(&c), "threads={threads}");
        assert_eq!(base.fingerprint, c.fingerprint, "threads={threads}");
    }
}

#[test]
fn serve_modes_differ_and_saturation_raises_latency() {
    let cell = |mode, rate| {
        Measurement::serve(8, 2, mode)
            .arrival_rate(rate)
            .horizon(Cycles::from_secs(3))
            .seed(42)
            .run()
    };
    let gang = cell(SchedulingMode::Gang, 3.0);
    let unco = cell(SchedulingMode::Uncoordinated, 3.0);
    assert!(gang.drained && unco.drained);
    assert_ne!(
        gang.fingerprint, unco.fingerprint,
        "coordination must be observable"
    );
    // Pushing the same cluster much harder lifts the tail.
    let hot = cell(SchedulingMode::Gang, 12.0);
    assert!(hot.submitted > gang.submitted);
    assert!(
        hot.e2e_p99 >= gang.e2e_p99,
        "hot {} < calm {}",
        hot.e2e_p99,
        gang.e2e_p99
    );
}

#[test]
fn serve_trace_overrides_poisson() {
    let t = vec![
        ArrivalSpec {
            at: Cycles::from_ms(100),
            nprocs: 2,
            size: 10,
            priority: 0,
        },
        ArrivalSpec {
            at: Cycles::from_ms(50),
            nprocs: 2,
            size: 10,
            priority: 0,
        },
    ];
    let c = Measurement::serve(4, 2, SchedulingMode::Gang)
        .trace(t)
        .horizon(Cycles::from_secs(1))
        .seed(1)
        .run();
    assert_eq!(c.submitted, 2);
    assert_eq!(c.admitted, 2);
    assert_eq!(c.completed, 2);
    assert!(c.drained);
}

/// Open-loop admission invariants under randomized rates, seeds, and
/// widths: no job is lost or double-dispatched, same-class admission is
/// FIFO, and the queue drains to empty once arrivals stop.
fn admission_case(rate_x10: u64, seed: u64, width: usize) -> Result<(), TestCaseError> {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::StaticDivision);
    cfg.quantum = Cycles::from_ms(100);
    cfg.eager_reclaim = true;
    cfg.seed = seed;
    let mut sim = Sim::new(cfg);
    let plan = ArrivalPlan::poisson(
        seed,
        rate_x10 as f64 / 10.0,
        Cycles::from_secs(2),
        width,
        5,
        20,
    );
    let planned = plan.len() as u64;
    sim.install_arrivals(&plan, |_, spec| {
        workloads::registry::build("p2p-small", spec.nprocs, 0, spec.size).unwrap()
    });
    let drained = sim.run_until_quiescent(SimTime::ZERO + Cycles::from_secs(120));
    prop_assert!(drained, "pipeline did not drain");
    let w = sim.world();
    // Conservation: every planned arrival was submitted; every submission
    // was admitted or rejected; every admitted job dispatched and finished
    // exactly once (PerJob slots make double-dispatch impossible to hide —
    // counts would diverge).
    prop_assert_eq!(w.jobrep.stats.submitted, planned);
    prop_assert_eq!(
        w.jobrep.stats.admitted + w.jobrep.stats.rejected,
        w.jobrep.stats.submitted
    );
    prop_assert_eq!(w.jobrep.stats.rejected, 0);
    prop_assert_eq!(w.stats.job_dispatched.len() as u64, w.jobrep.stats.admitted);
    prop_assert_eq!(w.stats.job_finished.len() as u64, w.jobrep.stats.admitted);
    prop_assert_eq!(w.stats.wait_latency.count(), w.jobrep.stats.admitted);
    prop_assert_eq!(w.stats.e2e_latency.count(), w.jobrep.stats.admitted);
    prop_assert_eq!(w.jobrep.waiting(), 0);
    // FIFO within the single priority class: JobIds are allocated at
    // admission, so dispatch times must be non-decreasing in JobId, and so
    // must submit times (an arrival can never overtake an earlier one).
    let dispatched: Vec<_> = w.stats.job_dispatched.iter().map(|(_, t)| *t).collect();
    for pair in dispatched.windows(2) {
        prop_assert!(pair[0] <= pair[1], "dispatch out of FIFO order");
    }
    let submitted: Vec<_> = w.stats.job_submitted.iter().map(|(_, t)| *t).collect();
    for pair in submitted.windows(2) {
        prop_assert!(pair[0] <= pair[1], "submit out of arrival order");
    }
    // Per job: submit <= dispatch <= finish.
    for (j, sub) in w.stats.job_submitted.iter() {
        let disp = w.stats.job_dispatched[&j];
        let fin = w.stats.job_finished[&j];
        prop_assert!(*sub <= disp && disp <= fin);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
    #[test]
    fn open_loop_admission_invariants(
        rate_x10 in 5u64..60,
        seed in 0u64..1_000,
        width in 1usize..4,
    ) {
        admission_case(rate_x10, seed, width)?;
    }
}
