//! The paper's §1 premise, as a test: without coordinated scheduling a
//! bulk-synchronous application slows down far beyond its fair time
//! share, because supersteps only complete when the ranks' local quanta
//! happen to overlap.

use cluster::measure::{bsp_completion, bsp_gang_vs_uncoordinated, SchedulingMode};
use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use workloads::bsp::Bsp;

#[test]
fn uncoordinated_scheduling_slows_bsp_substantially() {
    let r = bsp_gang_vs_uncoordinated(8, 120, Cycles::from_ms(2), Cycles::from_ms(50), 7);
    assert!(
        r.slowdown() > 1.3,
        "expected a clear gang-scheduling win, got {:.2}x ({} vs {})",
        r.slowdown(),
        r.gang,
        r.uncoordinated
    );
    // And the gang run is near its fair share: ~2x the dedicated compute
    // time (two slots), plus communication.
    let dedicated = Cycles::from_ms(2).raw() as f64 * 120.0;
    let fair = 2.0 * dedicated;
    assert!(
        (r.gang.raw() as f64) < fair * 1.6,
        "gang run too slow: {} vs fair share {}",
        r.gang,
        Cycles(fair as u64)
    );
}

#[test]
fn dynamic_coscheduling_recovers_communication_performance() {
    // Related work [12]: message arrivals preempt in favor of the
    // destination process. The BSP job then runs in near-dedicated time —
    // faster than its gang fair-share — because the compute-bound
    // competitor is starved. Both effects are the literature's.
    let q = Cycles::from_ms(50);
    let c = Cycles::from_ms(2);
    let gang = bsp_completion(8, 120, c, q, 7, SchedulingMode::Gang);
    let unco = bsp_completion(8, 120, c, q, 7, SchedulingMode::Uncoordinated);
    let dc = bsp_completion(8, 120, c, q, 7, SchedulingMode::DynamicCosched);
    assert!(dc < unco, "DC should beat uncoordinated: {dc} vs {unco}");
    assert!(dc < gang, "DC starves the competitor: {dc} vs {gang}");
    // Near-dedicated: within 2x of the pure compute time.
    let dedicated = c.raw() * 120;
    assert!(dc.raw() < 2 * dedicated + 100_000_000, "{dc}");
}

#[test]
fn uncoordinated_mode_still_loses_no_packets() {
    // Coordination affects *when* ranks run, not correctness: static
    // division keeps every context resident, so uncoordinated slicing is
    // slow but safe.
    let mut cfg = ClusterConfig::parpar(6, 2, BufferPolicy::StaticDivision);
    cfg.gang_scheduling = false;
    cfg.quantum = Cycles::from_ms(20);
    let mut sim = Sim::new(cfg);
    let bsp = Bsp {
        nprocs: 6,
        compute: Cycles::from_ms(1),
        msg_bytes: 512,
        supersteps: 50,
    };
    let all: Vec<usize> = (0..6).collect();
    sim.submit(&bsp, Some(all.clone())).unwrap();
    sim.submit(&bsp, Some(all)).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(120)));
    let w = sim.world();
    assert_eq!(w.stats.drops, 0);
    for n in &w.nodes {
        for p in n.apps.values() {
            assert_eq!(p.fm.gaps, 0);
            assert_eq!(p.fm.stats.msgs_received, 100); // 2 per superstep
        }
    }
}

#[test]
#[should_panic(expected = "uncoordinated scheduling cannot switch buffers")]
fn uncoordinated_full_buffer_is_rejected() {
    // The assertion *is* the paper's argument: without gang scheduling
    // there is no safe moment to hand the whole buffer to one process.
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.gang_scheduling = false;
    let _ = Sim::new(cfg);
}
