//! Exercises the Table-1 network-management API (paper Table 1) through
//! the abstract `CommManager` trait — the interface a different cluster
//! management system would program against.

use cluster::{ClusterConfig, GlueFm, Sim};
use fastmsg::division::BufferPolicy;
use gang_comm::api::{CommError, CommManager};
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;

fn sim(nodes: usize) -> Sim {
    let mut cfg = ClusterConfig::parpar(nodes, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = false;
    Sim::new(cfg)
}

#[test]
fn init_job_allocates_a_receivable_context() {
    let mut s = sim(4);
    s.engine.drive(|w, sched| {
        let mut glue = GlueFm::new(w, sched, 2);
        glue.init_job(SimTime::ZERO, 7, 0).unwrap();
    });
    let w = s.world();
    assert_eq!(w.nodes[2].nic.find_context(7), Some(0));
    // A second context for the same job is rejected by the NIC.
    s.engine.drive(|w, sched| {
        let mut glue = GlueFm::new(w, sched, 2);
        assert_eq!(
            glue.init_job(SimTime::ZERO, 7, 0),
            Err(CommError::NoResources)
        );
    });
}

#[test]
fn full_buffer_policy_admits_only_one_resident_context() {
    let mut s = sim(4);
    s.engine.drive(|w, sched| {
        let mut glue = GlueFm::new(w, sched, 0);
        glue.init_job(SimTime::ZERO, 1, 0).unwrap();
        // The whole send buffer is committed to job 1's context.
        assert_eq!(
            glue.init_job(SimTime::ZERO, 2, 0),
            Err(CommError::NoResources)
        );
    });
}

#[test]
fn switch_phases_enforce_ordering() {
    let mut s = sim(2);
    s.engine.drive(|w, sched| {
        let mut glue = GlueFm::new(w, sched, 0);
        // No switch in progress: every phase call is a BadPhase.
        assert_eq!(glue.halt_network(SimTime::ZERO), Err(CommError::BadPhase));
        assert_eq!(
            glue.context_switch(SimTime::ZERO, None, None),
            Err(CommError::BadPhase)
        );
        assert_eq!(
            glue.release_network(SimTime::ZERO),
            Err(CommError::BadPhase)
        );
    });
    // Start a switch on node 0 and walk the legal order.
    s.engine.drive(|w, sched| {
        w.nodes[0].seq.start(SimTime::ZERO, 1, 0, 1);
        let mut glue = GlueFm::new(w, sched, 0);
        glue.halt_network(SimTime::ZERO).unwrap();
        // Copy before the flush completed: refused.
        assert_eq!(
            glue.context_switch(SimTime::ZERO, None, None),
            Err(CommError::BadPhase)
        );
    });
}

#[test]
fn context_switch_validates_claimed_jobs_in_both_slots() {
    // Two real jobs pinned to the same nodes land in slots 0 and 1; walk
    // node 0's sequencer to the copy phase and drive COMM_context_switch
    // with explicit from/to claims, both wrong and right.
    let mut s = sim(2);
    // Long enough that neither job finishes (and unloads) before the
    // probe point: with auto-rotation off only slot 0 ever runs.
    let bench = P2pBandwidth::with_count(1024, 100_000);
    let j1 = s.submit(&bench, Some(vec![0, 1])).unwrap();
    let j2 = s.submit(&bench, Some(vec![0, 1])).unwrap();
    let now = SimTime::ZERO + Cycles::from_ms(10);
    s.run_until(now);
    s.engine.drive(|w, sched| {
        assert_eq!(w.nodes[0].noded.in_slot(0).map(|(j, _)| j), Some(j1));
        assert_eq!(w.nodes[0].noded.in_slot(1).map(|(j, _)| j), Some(j2));
        // Reach Copying by hand: one peer halt plus the local halt
        // completes the flush on a 2-node cluster.
        let seq = &mut w.nodes[0].seq;
        seq.start(now, 1, 0, 1);
        seq.on_halt_msg(1, 1);
        assert!(seq.on_local_halt());
        seq.flush_complete(now);

        let mut glue = GlueFm::new(w, sched, 0);
        // Claims are validated against the actual slot occupants: swapped
        // jobs, a bogus outgoing claim, and a bogus incoming claim are all
        // rejected without side effects.
        for (from, to) in [
            (Some(j2.0), Some(j1.0)),
            (Some(99), Some(j2.0)),
            (Some(j1.0), Some(99)),
        ] {
            assert_eq!(
                glue.context_switch(now, from, to),
                Err(CommError::UnknownJob)
            );
        }
        // Correct claims for both slots are accepted; partial and blind
        // forms of the same call would be too, but the double-claimed one
        // is the paper's Table-1 signature exercised end to end.
        glue.context_switch(now, Some(j1.0), Some(j2.0)).unwrap();
    });
}

#[test]
fn add_remove_node_membership() {
    let mut s = sim(4);
    s.engine.drive(|w, sched| {
        let mut glue = GlueFm::new(w, sched, 0);
        // Removing an idle node succeeds; removing it twice fails.
        glue.remove_node(SimTime::ZERO, 3).unwrap();
        assert_eq!(glue.remove_node(SimTime::ZERO, 3), Err(CommError::BadPhase));
        // Bring it back.
        glue.add_node(SimTime::ZERO, 3).unwrap();
        assert_eq!(glue.add_node(SimTime::ZERO, 3), Err(CommError::BadPhase));
        // A node with a resident context cannot be removed.
        glue.init_job(SimTime::ZERO, 9, 0).unwrap();
        assert_eq!(
            glue.remove_node(SimTime::ZERO, 0),
            Err(CommError::NoResources)
        );
    });
}

#[test]
fn end_job_through_the_trait() {
    // Run a real job to completion, then verify end_job already cleaned
    // up (double end_job errors).
    let mut s = sim(2);
    let bench = P2pBandwidth::with_count(1024, 5);
    let _job = s.submit(&bench, Some(vec![0, 1])).unwrap();
    assert!(s.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(5)));
    s.engine.drive(|w, sched| {
        let mut glue = GlueFm::new(w, sched, 0);
        assert_eq!(
            glue.end_job(SimTime::ZERO + Cycles::from_secs(5), 1),
            Err(CommError::UnknownJob)
        );
    });
}

#[test]
fn api_calls_are_usable_as_trait_objects() {
    // The paper's interoperability argument: the interface is abstract.
    let mut s = sim(2);
    s.engine.drive(|w, sched| {
        let mut glue = GlueFm::new(w, sched, 1);
        let mgr: &mut dyn CommManager = &mut glue;
        mgr.init_node(SimTime::ZERO).unwrap();
        mgr.init_job(SimTime::ZERO, 42, 0).unwrap();
        mgr.end_job(SimTime::ZERO, 42).unwrap_or_else(|e| {
            // end_job via trait needs a process; context-only teardown is
            // reported as UnknownJob here.
            assert_eq!(e, CommError::UnknownJob);
        });
    });
}
