//! Cluster-level verification of the flush protocol's ordering claims
//! (paper §3.2), read off the trace of a real run.

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use sim_core::trace::Category;
use workloads::alltoall::AllToAll;

fn traced_run(nodes: usize) -> Sim {
    let mut cfg = ClusterConfig::parpar(nodes, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(30);
    cfg.trace_capacity = 65536;
    let mut sim = Sim::new(cfg);
    let a = AllToAll::stress(nodes);
    let all: Vec<usize> = (0..nodes).collect();
    sim.submit(&a, Some(all.clone())).unwrap();
    sim.submit(&a, Some(all)).unwrap();
    sim.engine
        .run_until_pred(SimTime::ZERO + Cycles::from_secs(20), |w| {
            w.stats.switches >= 2
        });
    sim
}

#[test]
fn every_node_hears_every_other_node_halt_each_epoch() {
    let nodes = 5;
    let sim = traced_run(nodes);
    let w = sim.world();
    // For epoch 1: each node must log exactly nodes-1 halt arrivals and
    // one "flushed".
    for n in 0..nodes {
        let halts = w
            .trace
            .by_category(Category::Switch)
            .filter(|r| {
                r.node == Some(n) && r.msg.contains("halt from") && r.msg.contains("(epoch 1)")
            })
            .count();
        assert_eq!(halts, nodes - 1, "node {n} halt count");
        let flushed = w
            .trace
            .by_category(Category::Switch)
            .filter(|r| r.node == Some(n) && r.msg == "flushed")
            .count();
        assert!(flushed >= 1, "node {n} never flushed");
    }
}

#[test]
fn flush_precedes_buffer_switch_on_every_node() {
    let nodes = 4;
    let sim = traced_run(nodes);
    let w = sim.world();
    for n in 0..nodes {
        let records: Vec<_> = w
            .trace
            .by_category(Category::Switch)
            .filter(|r| r.node == Some(n))
            .collect();
        let flushed_at = records
            .iter()
            .find(|r| r.msg == "flushed")
            .expect("no flush record")
            .t;
        let switched_at = records
            .iter()
            .find(|r| r.msg.contains("buffers switched"))
            .expect("no buffer-switch record")
            .t;
        assert!(
            flushed_at < switched_at,
            "node {n}: copy at {switched_at} before flush at {flushed_at}"
        );
    }
}

#[test]
fn no_data_is_in_flight_when_any_node_copies() {
    // The whole point of the flush: by the time a node starts its copy,
    // every packet addressed to it has landed. Equivalent observable: at
    // CopyDone-time occupancies are stable — we verify via conservation:
    // nothing was dropped and FIFO held through 2+ switches (the
    // assertions inside the FM library fire otherwise), and at the end
    // of the run sent == received + in-queues.
    let sim = traced_run(6);
    let w = sim.world();
    assert_eq!(w.stats.drops, 0);
    let sent: u64 = w.nodes.iter().map(|n| n.nic.stats.data_sent).sum();
    let received: u64 = w.nodes.iter().map(|n| n.nic.stats.data_received).sum();
    // The run stops mid-flight: anything not received is still queued in
    // recv rings, parked in saved states, or on the wire at the horizon.
    assert!(sent >= received);
    assert!(sent - received < 2000, "{sent} vs {received}");
}
