//! End-to-end jobrep queueing: submissions that do not fit the gang
//! matrix wait and are admitted automatically as space frees up.

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;

#[test]
fn queued_job_runs_after_matrix_space_frees() {
    // 2 nodes, a 2-deep matrix: two jobs fill it; the third waits.
    let mut cfg = ClusterConfig::parpar(2, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(30);
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(2048, 300);
    let j1 = sim.submit_queued(&bench, None).unwrap().unwrap();
    let j2 = sim.submit_queued(&bench, None).unwrap().unwrap();
    let queued = sim.submit_queued(&bench, None).unwrap();
    assert!(queued.is_none(), "third job should queue");
    assert_eq!(sim.world().jobrep.waiting(), 1);

    assert!(
        sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)),
        "all three jobs should eventually finish"
    );
    let w = sim.world();
    assert_eq!(w.jobrep.waiting(), 0);
    assert_eq!(w.jobrep.stats.admitted, 3);
    // Three distinct jobs finished, including the late-admitted one.
    assert_eq!(w.stats.job_finished.len(), 3);
    assert!(w.stats.job_finished.contains_key(&j1));
    assert!(w.stats.job_finished.contains_key(&j2));
    // The queued job started strictly after one of the first two ended.
    let first_end = w.stats.job_finished.values().min().unwrap();
    let queued_job = w
        .stats
        .job_all_up
        .keys()
        .find(|j| *j != j1 && *j != j2)
        .expect("queued job never came up");
    assert!(w.stats.job_all_up[&queued_job] > *first_end);
    assert_eq!(w.stats.drops, 0);
}

#[test]
fn queue_preserves_fifo_admission() {
    let mut cfg = ClusterConfig::parpar(2, 1, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(30);
    let mut sim = Sim::new(cfg);
    let short = P2pBandwidth::with_count(1024, 50);
    let _running = sim.submit_queued(&short, None).unwrap().unwrap();
    // Two more queue up.
    assert!(sim.submit_queued(&short, None).unwrap().is_none());
    assert!(sim.submit_queued(&short, None).unwrap().is_none());
    assert_eq!(sim.world().jobrep.waiting(), 2);
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    let w = sim.world();
    assert_eq!(w.stats.job_finished.len(), 3);
    // Jobs were admitted (and thus came up) in submission order:
    // JobIds are allocated at admission, so all-up order tracks id order.
    let mut ups: Vec<_> = w.stats.job_all_up.iter().collect();
    ups.sort_by_key(|(j, _)| *j);
    for pair in ups.windows(2) {
        assert!(pair[0].1 <= pair[1].1, "admission out of order");
    }
}
