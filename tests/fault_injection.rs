//! Fault injection: the paper's §2.2 warning made executable.
//!
//! "Because of this credit scheme and the credit refill technique, a
//! single packet loss can mess up the credit counters and the entire flow
//! control algorithm. FM does not have a retransmission mechanism, based
//! on the assumption of an insignificant error rate on a SAN."

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;

fn run_with_loss(ppm: u32) -> (bool, u64, u64) {
    run_with_loss_rel(ppm, false).0
}

/// Returns `((done, wire_losses, credit_stalls), retransmits)`.
fn run_with_loss_rel(ppm: u32, reliability: bool) -> ((bool, u64, u64), u64) {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = false;
    cfg.wire_loss_ppm = ppm;
    cfg.reliability.enabled = reliability;
    cfg.seed = 1234;
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(1536, 20_000);
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    let done = sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(10));
    let w = sim.world();
    let stalls: u64 = w
        .nodes
        .iter()
        .flat_map(|n| n.apps.values())
        .map(|p| p.fm.flow.stats.credit_stalls)
        .sum();
    ((done, w.stats.wire_losses, stalls), w.stats.retransmits)
}

#[test]
fn reliable_san_completes() {
    let (done, losses, _) = run_with_loss(0);
    assert!(done);
    assert_eq!(losses, 0);
}

#[test]
fn packet_loss_wedges_fm_flow_control() {
    // At 200 ppm the 20k-message run loses a handful of packets. Lost
    // data packets consume credits that are never returned; lost refills
    // strand the window. Without retransmission the benchmark cannot
    // complete — exactly the fragility §2.2 describes.
    let (done, losses, _stalls) = run_with_loss(200);
    assert!(losses > 0, "fault injector never fired");
    assert!(
        !done,
        "FM without retransmission should wedge after {losses} losses"
    );
}

#[test]
fn reliability_layer_survives_heavy_loss() {
    // The same workload that wedges stock FM at 200 ppm completes at
    // 500 ppm once the opt-in go-back-N layer is on: lost fragments are
    // retransmitted and cumulative acks/credits self-heal the counters.
    let ((done, losses, _), retransmits) = run_with_loss_rel(500, true);
    assert!(losses > 0, "fault injector never fired");
    assert!(
        retransmits > 0,
        "losses happened but nothing was retransmitted"
    );
    assert!(
        done,
        "reliability layer should recover from {losses} losses ({retransmits} retransmits)"
    );
}

#[test]
fn reliability_layer_is_inert_at_zero_loss() {
    // With no loss the layer adds no retries — acks just piggyback on
    // traffic that exists anyway.
    let ((done, losses, _), retransmits) = run_with_loss_rel(0, true);
    assert!(done);
    assert_eq!(losses, 0);
    assert_eq!(retransmits, 0);
}

#[test]
fn switch_protocol_recovers_lost_broadcasts() {
    // With auto-rotation and a short quantum the halt/ready broadcast
    // protocol runs constantly; at 2% frame loss some halt or ready
    // messages vanish. Without recovery a single lost broadcast deadlocks
    // the whole machine mid-switch. With reliability on, the masterd
    // watchdog re-requests the protocol and the sequencers dedup the
    // rebroadcasts, so both jobs still finish.
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = true;
    cfg.quantum = Cycles::from_ms(5);
    cfg.wire_loss_ppm = 20_000;
    cfg.reliability.enabled = true;
    cfg.reliability.switch_retry = Cycles::from_ms(10);
    cfg.seed = 42;
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(1536, 2_000);
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    let done = sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60));
    let w = sim.world();
    assert!(w.stats.wire_losses > 0, "fault injector never fired");
    assert!(w.stats.switches > 0, "auto-rotation never switched");
    assert!(
        done,
        "switch protocol should recover from lost broadcasts \
         ({} losses, {} switches, {} retries, {} rebroadcasts)",
        w.stats.wire_losses, w.stats.switches, w.stats.switch_retries, w.stats.rebroadcasts
    );
    assert!(
        w.stats.switch_retries > 0 || w.stats.rebroadcasts > 0,
        "expected at least one protocol retry at this loss rate"
    );
}

#[test]
fn lost_messages_are_visible_as_gaps_or_shortfall() {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = false;
    cfg.wire_loss_ppm = 500;
    cfg.seed = 77;
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(1536, 20_000);
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    sim.run_until(SimTime::ZERO + Cycles::from_secs(5));
    let w = sim.world();
    assert!(w.stats.wire_losses > 0);
    let receiver_msgs: u64 = w
        .nodes
        .iter()
        .flat_map(|n| n.apps.values())
        .filter(|p| p.rank == 1)
        .map(|p| p.fm.stats.msgs_received)
        .sum();
    assert!(
        receiver_msgs < 20_000,
        "loss must be end-to-end visible (got {receiver_msgs})"
    );
}
