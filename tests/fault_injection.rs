//! Fault injection: the paper's §2.2 warning made executable.
//!
//! "Because of this credit scheme and the credit refill technique, a
//! single packet loss can mess up the credit counters and the entire flow
//! control algorithm. FM does not have a retransmission mechanism, based
//! on the assumption of an insignificant error rate on a SAN."

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use sim_core::time::{Cycles, SimTime};
use workloads::p2p::P2pBandwidth;

fn run_with_loss(ppm: u32) -> (bool, u64, u64) {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = false;
    cfg.wire_loss_ppm = ppm;
    cfg.seed = 1234;
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(1536, 20_000);
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    let done = sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(10));
    let w = sim.world();
    let stalls: u64 = w
        .nodes
        .iter()
        .flat_map(|n| n.apps.values())
        .map(|p| p.fm.flow.stats.credit_stalls)
        .sum();
    (done, w.stats.wire_losses, stalls)
}

#[test]
fn reliable_san_completes() {
    let (done, losses, _) = run_with_loss(0);
    assert!(done);
    assert_eq!(losses, 0);
}

#[test]
fn packet_loss_wedges_fm_flow_control() {
    // At 200 ppm the 20k-message run loses a handful of packets. Lost
    // data packets consume credits that are never returned; lost refills
    // strand the window. Without retransmission the benchmark cannot
    // complete — exactly the fragility §2.2 describes.
    let (done, losses, _stalls) = run_with_loss(200);
    assert!(losses > 0, "fault injector never fired");
    assert!(
        !done,
        "FM without retransmission should wedge after {losses} losses"
    );
}

#[test]
fn lost_messages_are_visible_as_gaps_or_shortfall() {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.auto_rotate = false;
    cfg.wire_loss_ppm = 500;
    cfg.seed = 77;
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(1536, 20_000);
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    sim.run_until(SimTime::ZERO + Cycles::from_secs(5));
    let w = sim.world();
    assert!(w.stats.wire_losses > 0);
    let receiver_msgs: u64 = w
        .nodes
        .iter()
        .flat_map(|n| n.apps.values())
        .filter(|p| p.rank == 1)
        .map(|p| p.fm.stats.msgs_received)
        .sum();
    assert!(
        receiver_msgs < 20_000,
        "loss must be end-to-end visible (got {receiver_msgs})"
    );
}
