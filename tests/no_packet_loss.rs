//! The paper's robustness claim (§3.2): "This context switch mechanism was
//! found to be robust, and withstood thorough testing without packet
//! loss."
//!
//! These tests run gang-scheduled communicating jobs across many buffer
//! switches and assert end-to-end conservation: every message sent is
//! received, in per-sender FIFO order (the FM library panics on any
//! sequence violation), with zero drops and tight credit accounting.

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use gang_comm::switcher::CopyStrategy;
use sim_core::time::{Cycles, SimTime};
use workloads::alltoall::AllToAll;
use workloads::p2p::P2pBandwidth;
use workloads::ring::Ring;

#[test]
fn two_gang_scheduled_p2p_jobs_lose_nothing() {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(20); // force many switches mid-stream
    cfg.copy = CopyStrategy::ValidOnly;
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(4096, 3000);
    let j1 = sim.submit(&bench, Some(vec![0, 1])).unwrap();
    let j2 = sim.submit(&bench, Some(vec![0, 1])).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(30)));
    let w = sim.world();
    assert!(
        w.stats.switches > 5,
        "want many switches, got {}",
        w.stats.switches
    );
    assert_eq!(w.stats.drops, 0);
    for j in [j1, j2] {
        assert!(w.stats.job_finished.contains_key(&j), "{j} unfinished");
    }
    // Message conservation: each receiver got exactly `count` messages.
    for n in &w.nodes {
        for p in n.apps.values() {
            if p.rank == 1 {
                assert_eq!(p.fm.stats.msgs_received, 3000);
                assert_eq!(p.fm.stats.bytes_received, 3000 * 4096);
            }
            assert_eq!(p.fm.gaps, 0);
        }
    }
}

#[test]
fn all_to_all_under_full_copy_switches_loses_nothing() {
    let mut cfg = ClusterConfig::parpar(6, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(40);
    cfg.copy = CopyStrategy::Full;
    let mut sim = Sim::new(cfg);
    let a2a = AllToAll {
        nprocs: 6,
        msg_bytes: 1536,
        burst: 8,
        rounds: Some(40),
    };
    let nodes: Vec<usize> = (0..6).collect();
    let j1 = sim.submit(&a2a, Some(nodes.clone())).unwrap();
    let j2 = sim.submit(&a2a, Some(nodes)).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60)));
    let w = sim.world();
    assert!(w.stats.switches >= 2);
    assert_eq!(w.stats.drops, 0);
    let expect = 40 * 8 * 5; // rounds * burst * peers
    for n in &w.nodes {
        for p in n.apps.values() {
            assert_eq!(
                p.fm.stats.msgs_received, expect,
                "{j1} {j2} rank {}",
                p.rank
            );
            assert_eq!(p.fm.stats.msgs_sent, expect);
        }
    }
}

#[test]
fn ring_survives_switches_and_preserves_token_order() {
    let mut cfg = ClusterConfig::parpar(5, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(15);
    let mut sim = Sim::new(cfg);
    let ring = Ring {
        nprocs: 5,
        msg_bytes: 256,
        laps: 400,
    };
    let nodes: Vec<usize> = (0..5).collect();
    sim.submit(&ring, Some(nodes.clone())).unwrap();
    // A CPU-bound job in the second slot forces real rotations.
    let spin = workloads::program::Uniform::new(5, "spin", |_| {
        Box::new(workloads::program::SpinProgram::default()) as Box<dyn workloads::program::Program>
    });
    sim.submit(&spin, Some(nodes)).unwrap();
    let done = sim
        .engine
        .run_until_pred(SimTime::ZERO + Cycles::from_secs(60), |w| {
            w.stats.job_finished.len() == 1
        });
    let _ = done;
    let w = sim.world();
    assert_eq!(w.stats.job_finished.len(), 1, "ring did not finish");
    assert!(w.stats.switches > 3);
    assert_eq!(w.stats.drops, 0);
    for n in &w.nodes {
        for p in n.apps.values() {
            if p.program.name() == "ring" || p.fm.job == 1 {
                assert_eq!(p.fm.gaps, 0);
            }
        }
    }
}

#[test]
fn credits_are_conserved_across_switches() {
    // After quiescence, every process's held credits must equal C0 toward
    // every peer minus credits consumed by in-flight nothing (queues are
    // empty at completion), up to refills not yet returned.
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(25);
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(1536, 2000);
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    sim.submit(&bench, Some(vec![2, 3])).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(30)));
    let w = sim.world();
    let c0 = w.cfg.fm.geometry().credits;
    for n in &w.nodes {
        for p in n.apps.values() {
            // credits held + consumed-but-unreturned on the peer side = C0
            // per peer; with everything drained the only slack is refills
            // that were never triggered (bounded by the low-water mark).
            let held = p.fm.flow.held_credits_total();
            let peers = w.cfg.nodes - 1;
            assert!(held <= peers * c0, "credit overflow on {}", p.pid);
            assert!(
                held >= peers * c0 - peers * c0.div_ceil(2),
                "credit leak on {}: held {held}, C0 {c0}",
                p.pid
            );
        }
    }
}

#[test]
fn queues_are_empty_after_all_jobs_finish() {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::FullBuffer);
    cfg.quantum = Cycles::from_ms(20);
    let mut sim = Sim::new(cfg);
    let bench = P2pBandwidth::with_count(8000, 500);
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    sim.submit(&bench, Some(vec![0, 1])).unwrap();
    assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(30)));
    let w = sim.world();
    for n in &w.nodes {
        assert_eq!(n.nic.send_q_occupancy(), 0, "node {} send_q", n.id);
        assert_eq!(n.nic.recv_q_occupancy(), 0, "node {} recv_q", n.id);
        assert!(n.backing.is_empty(), "node {} backing store", n.id);
    }
}
