//! Shape assertions for the context-switch overhead results
//! (paper §4.2, Figs. 7, 8, 9).

use cluster::measure::switch_overhead_run;
use gang_comm::strategy::SwitchStrategy;
use gang_comm::switcher::CopyStrategy;
use sim_core::time::Cycles;

fn run(nodes: usize, copy: CopyStrategy) -> cluster::measure::SwitchOverheadRun {
    switch_overhead_run(nodes, copy, SwitchStrategy::GangFlush, 4, 99)
}

#[test]
fn fig7_full_copy_obeys_the_85ms_bound_and_dominates() {
    let r = run(8, CopyStrategy::Full);
    let (halt, bswitch, release) = r.ledger.mean_stages();
    // Paper: full buffer switch < 85 ms = 17 M cycles; and "the vast
    // majority of the time consumed by the switch was spent on the second
    // stage".
    assert!(r.ledger.max_total() < 20_000_000.0);
    assert!(bswitch < 17_000_000.0, "{bswitch}");
    assert!(bswitch > 10.0 * halt, "{bswitch} vs halt {halt}");
    assert!(bswitch > 10.0 * release, "{bswitch} vs release {release}");
}

#[test]
fn fig7_buffer_switch_is_local_flat_in_node_count() {
    // "The buffer switch time … does not depend on the number of nodes in
    // the system because it is a local procedure."
    let b4 = run(4, CopyStrategy::Full).ledger.mean_stages().1;
    let b12 = run(12, CopyStrategy::Full).ledger.mean_stages().1;
    assert!(
        (b4 - b12).abs() / b4 < 0.05,
        "full copy should be node-count independent: {b4} vs {b12}"
    );
}

#[test]
fn fig7_halt_and_release_grow_with_node_count() {
    // "The flush and refilling stages consume more time as more nodes are
    // involved … a global protocol between unsynchronized computers."
    let small = run(2, CopyStrategy::Full);
    let large = run(16, CopyStrategy::Full);
    let (h2, _, r2) = small.ledger.mean_stages();
    let (h16, _, r16) = large.ledger.mean_stages();
    assert!(h16 > h2 * 1.5, "halt: {h2} -> {h16}");
    assert!(r16 > r2, "release: {r2} -> {r16}");
}

#[test]
fn fig8_receive_queue_grows_with_nodes_send_stays_small() {
    let small = run(4, CopyStrategy::ValidOnly);
    let large = run(16, CopyStrategy::ValidOnly);
    assert!(
        large.mean_recv_valid > 2.0 * small.mean_recv_valid,
        "recv occupancy must grow: {} -> {}",
        small.mean_recv_valid,
        large.mean_recv_valid
    );
    // "The increase in messages sent does not fill the send buffer because
    // the LANai processor's only job is to empty it."
    assert!(
        large.mean_send_valid < large.mean_recv_valid / 4.0,
        "send {} vs recv {}",
        large.mean_send_valid,
        large.mean_recv_valid
    );
    // Queues are "generally quite empty": far below capacity (252 / 668).
    assert!(large.mean_recv_valid < 300.0);
    assert!(large.mean_send_valid < 60.0);
}

#[test]
fn fig9_improved_copy_is_an_order_of_magnitude_cheaper() {
    let full = run(8, CopyStrategy::Full);
    let valid = run(8, CopyStrategy::ValidOnly);
    let bf = full.ledger.mean_stages().1;
    let bv = valid.ledger.mean_stages().1;
    // Paper: 17 M → < 2.5 M cycles ("reduced dramatically").
    assert!(bv < 2_500_000.0, "{bv}");
    assert!(bf > 6.0 * bv, "{bf} vs {bv}");
}

#[test]
fn fig9_improved_copy_grows_with_occupancy() {
    // "The linear growth in the copying time is correlated with the linear
    // growth of the number of packets found in the buffer."
    let small = run(4, CopyStrategy::ValidOnly);
    let large = run(16, CopyStrategy::ValidOnly);
    let bs = small.ledger.mean_stages().1;
    let bl = large.ledger.mean_stages().1;
    assert!(
        bl > 1.5 * bs,
        "improved switch should track occupancy: {bs} -> {bl}"
    );
}

#[test]
fn overhead_is_small_relative_to_the_quantum() {
    // Paper: improved switch < 1.25% of a 1 s quantum; full copy still
    // "tolerable" (< ~8.5%).
    let valid = run(8, CopyStrategy::ValidOnly);
    let pct = valid.ledger.overhead_pct(Cycles::from_secs(1));
    assert!(pct < 1.25, "improved switch overhead {pct}%");
    let full = run(8, CopyStrategy::Full);
    let pct_full = full.ledger.overhead_pct(Cycles::from_secs(1));
    assert!(pct_full < 10.0, "full switch overhead {pct_full}%");
    assert!(pct_full > pct);
}

#[test]
fn no_loss_under_either_copy_strategy() {
    for copy in [CopyStrategy::Full, CopyStrategy::ValidOnly] {
        let r = run(6, copy);
        assert_eq!(r.drops, 0, "{copy:?}");
    }
}

#[test]
fn stage_costs_do_not_depend_on_the_quantum() {
    // The paper amortizes a fixed switch cost over the quantum; verify the
    // cost itself is quantum-independent by comparing two quanta.
    use cluster::{ClusterConfig, Sim};
    use fastmsg::division::BufferPolicy;
    use sim_core::time::SimTime;
    use workloads::alltoall::AllToAll;

    let mut results = Vec::new();
    for q_ms in [40u64, 120] {
        let mut cfg = ClusterConfig::parpar(6, 2, BufferPolicy::FullBuffer);
        cfg.copy = CopyStrategy::ValidOnly;
        cfg.quantum = Cycles::from_ms(q_ms);
        cfg.seed = 5;
        let mut sim = Sim::new(cfg);
        let a = AllToAll::stress(6);
        let nodes: Vec<usize> = (0..6).collect();
        sim.submit(&a, Some(nodes.clone())).unwrap();
        sim.submit(&a, Some(nodes)).unwrap();
        sim.engine
            .run_until_pred(SimTime::ZERO + Cycles::from_secs(120), |w| {
                w.stats.switches >= 4
            });
        results.push(sim.world().stats.ledger.mean_total());
    }
    let ratio = results[0] / results[1];
    assert!(
        (0.5..=2.0).contains(&ratio),
        "stage cost should not scale with quantum: {results:?}"
    );
}
