//! Deadlock-freedom proof harness for the demand-driven credit allocator
//! (`BufferPolicy::Demand`).
//!
//! The allocator moves credit windows between channels *while packets are
//! in flight*, which is exactly the kind of mechanism that invites credit
//! leaks and silent wedges. The defence is a floor invariant — a rebalance
//! target is never below one credit, so every live channel always has at
//! least one credit circulating and a one-credit window refills on every
//! consumed packet. This harness attacks that claim from four sides:
//!
//! * adversarial schedules (gang and non-gang, rotating and co-resident
//!   jobs, skewed and uniform traffic, mid-stream rebalances) must always
//!   quiesce with nothing lost and every ledger intact;
//! * at the paper's scale (16 hosts, 8 contexts) static division's
//!   `C0 = Br/(n²·p)` hits zero and wedges, while Demand — same queue
//!   split, same memory — completes;
//! * the ledger can never acquire credits: its conserved capacity is
//!   bounded by the full-buffer scheme's receive queue;
//! * the windowed parallel engine replays the same rebalance schedule
//!   bit-for-bit, so the proof is not an artifact of serial execution.

use cluster::{ClusterConfig, Sim};
use fastmsg::config::FmConfig;
use fastmsg::demand::DemandWindows;
use fastmsg::division::{BufferPolicy, CreditRounding};
use proptest::prelude::*;
use sim_core::time::{Cycles, SimTime};
use workloads::alltoall::AllToAll;
use workloads::p2p::P2pBandwidth;
use workloads::ring::Ring;

/// One adversarial schedule: a job mix (with its slot requirement), a
/// gang/non-gang mode, quanta, a rebalance cadence that may or may not
/// divide the quantum, and a burst batch setting.
#[allow(clippy::too_many_arguments)]
fn quiesce_case(
    shape: usize,
    gang: bool,
    quantum_ms: u64,
    rebalance_ms: u64,
    msg: u64,
    count: u64,
    batch: usize,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut cfg = ClusterConfig::parpar(4, 2, BufferPolicy::Demand);
    cfg.gang_scheduling = gang;
    cfg.quantum = Cycles::from_ms(quantum_ms);
    cfg.fm.demand.rebalance_interval = Cycles::from_ms(rebalance_ms);
    cfg.batch = batch;
    cfg.seed = seed;
    let geo = cfg.fm.geometry();
    let full = {
        let mut f = cfg.fm.clone();
        f.policy = BufferPolicy::FullBuffer;
        f.geometry()
    };
    let mut sim = Sim::new(cfg);
    let p2p = P2pBandwidth::with_count(msg, count);
    let ring = Ring {
        nprocs: 4,
        msg_bytes: msg,
        laps: 2,
    };
    let a2a = AllToAll {
        nprocs: 4,
        msg_bytes: msg,
        burst: 4,
        rounds: Some(2),
    };
    // Every shape needs at most 2 contexts per node, so the same mixes
    // run gang-rotated and fully co-resident (non-gang).
    match shape {
        // Two streams rotating on one pair: the classic starvation bait.
        0 => {
            sim.submit(&p2p, Some(vec![0, 1])).unwrap();
            sim.submit(&p2p, Some(vec![0, 1])).unwrap();
        }
        // A ring under a point-to-point stream: the ring's forwarding
        // traffic keeps every channel warm while the stream skews one.
        1 => {
            sim.submit(&ring, Some(vec![0, 1, 2, 3])).unwrap();
            sim.submit(&p2p, Some(vec![0, 1])).unwrap();
        }
        // Disjoint pairs under a ring: rebalances on nodes whose hot
        // channel is *not* the ring's predecessor.
        2 => {
            sim.submit(&p2p, Some(vec![0, 1])).unwrap();
            sim.submit(&p2p, Some(vec![2, 3])).unwrap();
            sim.submit(&ring, Some(vec![0, 1, 2, 3])).unwrap();
        }
        // All-to-all bursts: uniform pressure, every window contended.
        _ => {
            sim.submit(&a2a, Some(vec![0, 1, 2, 3])).unwrap();
            sim.submit(&p2p, Some(vec![0, 1])).unwrap();
        }
    }
    let done = sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(60));
    prop_assert!(done, "schedule wedged");
    let w = sim.world();
    prop_assert_eq!(w.stats.drops, 0);
    for (h, n) in w.nodes.iter().enumerate() {
        prop_assert_eq!(n.nic.send_q_occupancy(), 0);
        prop_assert_eq!(n.nic.recv_q_occupancy(), 0);
        prop_assert!(n.backing.is_empty());
        for p in n.apps.values() {
            prop_assert_eq!(p.fm.gaps, 0);
            let d = p.fm.flow.demand().expect("demand ledger missing");
            // Conservation: the ledger still administers exactly the
            // geometry's receive share — no credit was minted or leaked —
            // and that share never exceeds the full-buffer queue.
            prop_assert_eq!(d.capacity(), geo.recv_slots);
            prop_assert!(d.capacity() <= full.recv_slots);
            for peer in 0..4 {
                if peer == h {
                    continue;
                }
                // The deadlock-freedom floor, post-quiescence: every peer
                // channel keeps a credit, and no scheduled shrink could
                // ever take the last one.
                prop_assert!(d.window(peer) >= 1, "host {h} peer {peer} starved");
                prop_assert!(d.pending_shrink(peer) < d.window(peer));
            }
        }
    }
    Ok(())
}

proptest! {
    // Each case is a full cluster simulation; 256 schedules is the
    // harness's contract (the vendored proptest default).
    #![proptest_config(ProptestConfig {
        cases: 256,
        .. ProptestConfig::default()
    })]

    /// Adversarial schedules always quiesce: jobs finish, nothing drops,
    /// queues drain, and every demand ledger ends conserved and floored.
    #[test]
    fn adversarial_schedules_quiesce(
        shape in 0usize..4,
        gang in any::<bool>(),
        quantum_ms in 5u64..40,
        rebalance_ms in 1u64..12,
        msg in 1u64..6_000,
        count in 8u64..50,
        batch_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let batch = [0usize, 3, 16][batch_idx];
        quiesce_case(shape, gang, quantum_ms, rebalance_ms, msg, count, batch, seed)?;
    }

    /// The ledger in isolation: arbitrary traffic skews and rebalance
    /// cadences never change the conserved capacity, never take a window
    /// below the floor, and the capacity — derived from static division's
    /// own queue split — never exceeds the full-buffer receive queue.
    #[test]
    fn ledger_capacity_is_conserved_and_bounded(
        n in 1usize..9,
        p in 2usize..17,
        recv in 256usize..1025,
        traffic_seed in any::<u64>(),
        rounds in 1usize..6,
    ) {
        // Per-(peer, round) traffic volumes from a splitmix64 stream (the
        // vendored proptest has no collection strategies).
        let volume = |k: u64| {
            let mut z = traffic_seed.wrapping_add(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % 200
        };
        let demand = BufferPolicy::Demand.geometry(252, recv, n, p, CreditRounding::Floor);
        let full = BufferPolicy::FullBuffer.geometry(252, recv, n, p, CreditRounding::Floor);
        let mut d = DemandWindows::new(0, p, demand.credits, demand.recv_slots);
        let cap0 = d.capacity();
        prop_assert!(cap0 <= full.recv_slots, "{cap0} > {}", full.recv_slots);
        for round in 0..rounds {
            for peer in 1..p {
                // Skew rotates with the round so shrinks scheduled in one
                // round are applied by the next round's traffic.
                let t = volume((peer + round) as u64 % 16);
                for _ in 0..t {
                    d.advance(peer);
                }
            }
            d.rebalance();
            prop_assert_eq!(d.capacity(), cap0, "round {}", round);
            for peer in 1..p {
                prop_assert!(d.window(peer) >= 1);
                prop_assert!(d.pending_shrink(peer) < d.window(peer));
            }
        }
    }
}

/// The paper-scale separation: at 16 hosts and 8 contexts static division
/// computes `C0 = 668/(8²·16) = 0` — its channels are stillborn and the
/// jobs wedge forever — while Demand, from the same `668/8`-slot queue
/// split, keeps every channel at the floor or better and completes.
#[test]
fn demand_completes_where_static_division_wedges() {
    let run = |policy: BufferPolicy| {
        let mut cfg = ClusterConfig::parpar(16, 8, policy);
        cfg.quantum = Cycles::from_ms(10);
        cfg.seed = 7;
        let geo = cfg.fm.geometry();
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(2048, 10);
        for _ in 0..4 {
            sim.submit(&bench, Some(vec![0, 1])).unwrap();
        }
        let done = sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(3));
        let w = sim.world();
        (geo.credits, done, w.stats.drops, w.stats.realloc_events)
    };

    let (c0, done, drops, _) = run(BufferPolicy::StaticDivision);
    assert_eq!(c0, 0, "the n² collapse should zero static credits");
    assert!(!done, "zero-credit static division cannot finish");
    assert_eq!(drops, 0, "a wedge is starvation, not loss");

    let (c0, done, drops, reallocs) = run(BufferPolicy::Demand);
    assert!(c0 >= 1, "demand must start live");
    assert!(done, "demand wedged at the paper scale");
    assert_eq!(drops, 0);
    assert!(reallocs > 0, "skewed traffic should trigger rebalances");
}

/// Demand under the windowed parallel engine is the same simulation: the
/// rebalance timers serialize between windows (they are node-less FM
/// events) and every observable matches the sequential run exactly.
#[test]
fn parallel_demand_matches_sequential() {
    let run = |threads: usize| {
        let mut cfg = ClusterConfig::parpar(8, 1, BufferPolicy::Demand);
        cfg.auto_rotate = false;
        cfg.seed = 311;
        cfg.threads = threads;
        let mut sim = Sim::new(cfg);
        let bench = P2pBandwidth::with_count(4096, 300);
        let mut jobs = Vec::new();
        for pair in [[0usize, 1], [2, 3], [4, 5], [6, 7]] {
            jobs.push(sim.submit(&bench, Some(pair.to_vec())).unwrap());
        }
        assert!(sim.run_until_jobs_done(SimTime::ZERO + Cycles::from_secs(20)));
        if threads > 1 {
            assert!(
                sim.parallel_windows() > 0,
                "threads={threads}: windowed driver never engaged"
            );
        }
        let finishes: Vec<_> = jobs
            .iter()
            .map(|j| sim.world().stats.job_finished[j])
            .collect();
        let w = sim.world();
        (
            sim.engine.events_processed(),
            sim.engine.stream_digest(),
            finishes,
            w.stats.realloc_events,
            w.stats.credits_migrated,
        )
    };
    let seq = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), seq, "threads={threads}");
    }
}

/// The geometry backing the whole harness: Demand's per-context share is
/// static division's, so even with all `n` contexts resident its pinned
/// memory never exceeds one full-buffer queue — the paper scheme's cost.
#[test]
fn demand_footprint_matches_static_division() {
    for n in 1..=8usize {
        let fm = FmConfig::parpar(16, n, BufferPolicy::Demand);
        let d = fm.geometry();
        let s = BufferPolicy::StaticDivision.geometry(252, 668, n, 16, CreditRounding::Floor);
        assert_eq!(d.recv_slots, s.recv_slots);
        assert_eq!(d.send_slots, s.send_slots);
        assert!(d.recv_slots * n <= 668);
        assert_eq!(fm.resident_contexts(), n);
    }
}
