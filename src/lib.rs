//! Umbrella crate re-exporting the full reproduction stack.
pub use cluster;
pub use fastmsg;
pub use gang_comm;
pub use hostsim;
pub use lanai;
pub use myrinet;
pub use parpar;
pub use sim_core;
pub use workloads;
