//! `gang-sim` — command-line scenario runner for the simulated ParPar
//! cluster.
//!
//! ```text
//! cargo run --release --bin gang-sim -- \
//!     --nodes 16 --jobs 3 --workload alltoall --msg-bytes 1536 \
//!     --quantum-ms 100 --policy full --copy valid --duration-ms 500
//! ```
//!
//! Prints per-job bandwidth, switch-stage statistics, queue occupancy and
//! loss counters for any combination of the knobs the paper explores.

use cluster::{ClusterConfig, Sim};
use fastmsg::division::BufferPolicy;
use gang_comm::strategy::SwitchStrategy;
use gang_comm::switcher::CopyStrategy;
use sim_core::report::{Cell, Table};
use sim_core::time::{Cycles, SimTime};
use workloads::alltoall::AllToAll;
use workloads::collectives::{AllReduce, Barrier};
use workloads::p2p::P2pBandwidth;
use workloads::program::Workload;
use workloads::ring::Ring;

struct Args {
    nodes: usize,
    jobs: usize,
    workload: String,
    msg_bytes: u64,
    quantum_ms: u64,
    duration_ms: u64,
    policy: BufferPolicy,
    copy: CopyStrategy,
    strategy: SwitchStrategy,
    seed: u64,
}

fn parse_args() -> Args {
    let mut a = Args {
        nodes: 16,
        jobs: 2,
        workload: "p2p".into(),
        msg_bytes: 16384,
        quantum_ms: 100,
        duration_ms: 500,
        policy: BufferPolicy::FullBuffer,
        copy: CopyStrategy::ValidOnly,
        strategy: SwitchStrategy::GangFlush,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--nodes" => a.nodes = val().parse().unwrap(),
            "--jobs" => a.jobs = val().parse().unwrap(),
            "--workload" => a.workload = val(),
            "--msg-bytes" => a.msg_bytes = val().parse().unwrap(),
            "--quantum-ms" => a.quantum_ms = val().parse().unwrap(),
            "--duration-ms" => a.duration_ms = val().parse().unwrap(),
            "--seed" => a.seed = val().parse().unwrap(),
            "--policy" => {
                a.policy = match val().as_str() {
                    "full" => BufferPolicy::FullBuffer,
                    "static" => BufferPolicy::StaticDivision,
                    "cached" => BufferPolicy::CachedEndpoints,
                    "demand" => BufferPolicy::Demand,
                    other => panic!("unknown policy {other} (full|static|cached|demand)"),
                }
            }
            "--copy" => {
                a.copy = match val().as_str() {
                    "valid" => CopyStrategy::ValidOnly,
                    "full" => CopyStrategy::Full,
                    other => panic!("unknown copy {other} (valid|full)"),
                }
            }
            "--strategy" => {
                a.strategy = match val().as_str() {
                    "flush" => SwitchStrategy::GangFlush,
                    "share" => SwitchStrategy::ShareDiscard {
                        retransmit_timeout: Cycles::from_ms(10),
                    },
                    "ack" => SwitchStrategy::AckDrain,
                    other => panic!("unknown strategy {other} (flush|share|ack)"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --nodes N --jobs K --workload p2p|alltoall|barrier|allreduce|ring \
                     --msg-bytes B --quantum-ms Q --duration-ms D \
                     --policy full|static|cached|demand \
                     --copy valid|full --strategy flush|share|ack --seed S"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    a
}

fn build_workload(a: &Args) -> Box<dyn Workload> {
    match a.workload.as_str() {
        "p2p" => Box::new(P2pBandwidth::with_count(a.msg_bytes, u64::MAX / 4)),
        "alltoall" => Box::new(AllToAll {
            nprocs: a.nodes,
            msg_bytes: a.msg_bytes,
            burst: 8,
            rounds: None,
        }),
        "barrier" => Box::new(Barrier {
            nprocs: a.nodes,
            msg_bytes: a.msg_bytes.min(1536),
            repetitions: u64::MAX / 4,
        }),
        "allreduce" => {
            // Recursive doubling needs a power-of-two process count.
            let np = if a.nodes.is_power_of_two() {
                a.nodes
            } else {
                (a.nodes.next_power_of_two() / 2).max(2)
            };
            Box::new(AllReduce {
                nprocs: np,
                msg_bytes: a.msg_bytes,
                repetitions: u64::MAX / 4,
            })
        }
        "ring" => Box::new(Ring {
            nprocs: a.nodes,
            msg_bytes: a.msg_bytes,
            laps: u64::MAX / 4,
        }),
        other => panic!("unknown workload {other}"),
    }
}

fn main() {
    let a = parse_args();
    let mut cfg = ClusterConfig::parpar(a.nodes, a.jobs.max(2), a.policy);
    cfg.quantum = Cycles::from_ms(a.quantum_ms);
    cfg.copy = a.copy;
    cfg.strategy = a.strategy;
    cfg.seed = a.seed;
    if matches!(
        a.policy,
        BufferPolicy::StaticDivision | BufferPolicy::Demand
    ) {
        cfg.fm.max_contexts = a.jobs.max(1);
    }
    let geo = cfg.fm.geometry();
    println!(
        "gang-sim: {} nodes, {} jobs of '{}', {} B messages, {} ms quantum",
        a.nodes, a.jobs, a.workload, a.msg_bytes, a.quantum_ms
    );
    println!(
        "policy {:?}, copy {:?}, strategy {}, C0 = {} credits, queues {}/{} pkts",
        a.policy,
        a.copy,
        a.strategy.name(),
        geo.credits,
        geo.send_slots,
        geo.recv_slots
    );

    let mut sim = Sim::new(cfg);
    let w = build_workload(&a);
    let nodes: Vec<usize> = (0..w.nprocs()).collect();
    let mut jobs = Vec::new();
    for _ in 0..a.jobs {
        match sim.submit(w.as_ref(), Some(nodes.clone())) {
            Ok(j) => jobs.push(j),
            Err(e) => {
                eprintln!("submission failed: {e:?} (matrix full?)");
                std::process::exit(1);
            }
        }
    }
    sim.run_until(SimTime::ZERO + Cycles::from_ms(a.duration_ms));
    let world = sim.world();

    let mut t = Table::new("per-job receive bandwidth", &["job", "MB/s", "bytes"]);
    for j in &jobs {
        if let Some(m) = world.stats.job_bw.get(j) {
            let secs = (a.duration_ms as f64) / 1e3;
            t.row(vec![
                format!("{j}").into(),
                Cell::Float(m.bytes() as f64 / 1e6 / secs, 2),
                m.bytes().into(),
            ]);
        }
    }
    println!("\n{}", t.render());

    if world.stats.ledger.samples() > 0 {
        let (h, b, r) = world.stats.ledger.mean_stages();
        println!(
            "switches: {} cluster-wide; mean stages halt {:.0} / copy {:.0} / release {:.0} cycles",
            world.stats.switches, h, b, r
        );
        println!(
            "switch overhead at this quantum: {:.3}%",
            world
                .stats
                .ledger
                .overhead_pct(Cycles::from_ms(a.quantum_ms))
        );
    } else if world.stats.switches > 0 {
        println!(
            "switches: {} cluster-wide (signal-only: static division needs no buffer switch)",
            world.stats.switches
        );
    } else {
        println!("no context switches occurred");
    }
    if !world.stats.queue_samples.is_empty() {
        let n = world.stats.queue_samples.len() as f64;
        let (s, r) = world
            .stats
            .queue_samples
            .iter()
            .fold((0.0, 0.0), |(s, r), q| {
                (s + q.send_valid as f64, r + q.recv_valid as f64)
            });
        println!(
            "mean queue occupancy at switch: {:.1} send / {:.1} recv valid packets",
            s / n,
            r / n
        );
    }
    println!(
        "drops: {}, wire losses: {}, network packets: {}",
        world.stats.drops,
        world.stats.wire_losses,
        world.net.total_packets()
    );
}
