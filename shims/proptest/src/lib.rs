//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real proptest cannot be fetched. This shim implements exactly the API
//! surface the workspace's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, integer-range / tuple / `collection::vec` / `any`
//! strategies — on top of a deterministic SplitMix64 generator.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking: a failing case reports its generated inputs verbatim;
//! * case count comes from `PROPTEST_CASES` (default 256);
//! * seeding is a deterministic hash of the test name, so failures
//!   reproduce without a regressions file.

use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic generator driving all strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut m = (self.next_u64() as u128) * (n as u128);
        if (m as u64) < n {
            let t = n.wrapping_neg() % n;
            while (m as u64) < t {
                m = (self.next_u64() as u128) * (n as u128);
            }
        }
        (m >> 64) as u64
    }
}

/// A value generator. The subset of proptest's `Strategy` the tests use:
/// generation only, no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f` of this strategy's values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among strategies of a common value type; built by
/// [`prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> OneOf<T> {
    /// From `(weight, strategy)` pairs; total weight must be positive.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(
            options.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
            "prop_oneof: zero total weight"
        );
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Weighted strategy choice: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
}

/// The error type a property body may short-circuit with via `?`. In this
/// shim assertion macros panic instead, so values of this type are rare.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-block configuration (`#![proptest_config(..)]`); only `cases` has
/// an effect in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run for each property in the block.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking in the shim).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: cases(),
            max_shrink_iters: 0,
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+);)+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if bool::arbitrary(rng) {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: an arbitrary `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with length drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 256).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `f` for each case; on panic, re-panic with the case's inputs and
/// reproduction info. `f` receives the RNG plus a slot it must fill with
/// a human-readable description of the inputs it drew *before* running
/// the body, so a failing case can report them.
pub fn run_cases<F>(name: &str, f: F)
where
    F: FnMut(&mut TestRng, &mut String),
{
    run_cases_with(name, cases(), f)
}

/// [`run_cases`] with an explicit case count (from `proptest_config`).
pub fn run_cases_with<F>(name: &str, ncases: u32, mut f: F)
where
    F: FnMut(&mut TestRng, &mut String),
{
    let base = seed_for(name);
    for case in 0..ncases {
        let mut rng = TestRng::new(base.wrapping_add(case as u64));
        let mut desc = String::new();
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut rng, &mut desc)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            panic!("property '{name}' failed at case {case}/{ncases}:\n  {msg}\n  inputs:\n{desc}");
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Property-test entry point: generates inputs from the given strategies
/// and runs the body for [`cases`] cases (or the count from an optional
/// leading `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::__proptest_impl! { ($cfg) $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)+ }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            // The body-wrapping closure is called in place so `return` /
            // `?` inside property bodies behave as in real proptest.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases_with(
                    concat!(module_path!(), "::", stringify!($name)),
                    __cfg.cases,
                    |__rng, __desc| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        $(__desc.push_str(&format!("    {} = {:?}\n", stringify!($arg), &$arg));)+
                        let __res: ::std::result::Result<(), $crate::TestCaseError> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        if let ::std::result::Result::Err(e) = __res {
                            panic!("{e}");
                        }
                    },
                );
            }
        )+
    };
}

/// `assert!` under a name the property tests already use.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the property tests already use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the property tests already use.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(0u8..5, 2..9).generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = TestRng::new(9);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::new(9);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(x in 0u64..100, pair in (0u8..4, any::<bool>())) {
            prop_assert!(x < 100);
            let (a, _b) = pair;
            prop_assert!(a < 4);
        }
    }
}
