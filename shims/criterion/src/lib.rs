//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real criterion cannot be fetched. This shim implements the API surface
//! the workspace's benches use — `Criterion`, benchmark groups,
//! `bench_with_input`, `iter` / `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros — with straightforward wall-clock measurement:
//!
//! * per-sample iteration count is auto-calibrated so one sample takes
//!   roughly `CRITERION_SAMPLE_MS` milliseconds (default 5);
//! * `sample_size` samples are collected (default 60) and the median,
//!   mean and min per-iteration times are printed;
//! * a positional command-line argument filters benchmarks by substring
//!   (so `cargo bench --bench engine -- queue_depth` works as expected).
//!
//! There is no statistical regression testing, HTML report, or plotting.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batch setup cost relates to the routine (accepted, ignored: setup
/// is always excluded from timing, one setup per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // The first free-standing argument (after cargo-bench's own flags)
        // is a name filter, as with real criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        Criterion {
            sample_size: 60,
            filter,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let outer_sample_size = self.sample_size;
        BenchmarkGroup {
            c: self,
            name: name.into(),
            outer_sample_size,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        self.run(&name, f);
    }

    fn run(&mut self, full_name: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(full_name, &b.samples);
    }
}

/// A named group; benchmarks in it are reported as `group/bench`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    outer_sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group's benchmarks (restored
    /// when the group drops).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.c.sample_size = n;
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.run(&full, |b| f(b, input));
        self
    }

    /// Benchmark without an input value.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.run(&full, f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.c.sample_size = self.outer_sample_size;
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration seconds, one entry per sample.
    samples: Vec<f64>,
}

/// Target wall time for one sample (`CRITERION_SAMPLE_MS`, default 5).
fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5u64);
    Duration::from_millis(ms.max(1))
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let budget = sample_budget();
        // Calibrate: how many iterations fill one sample budget?
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= budget / 2 || iters >= 1 << 30 {
                break;
            }
            // Aim straight for the budget once the timing is meaningful.
            iters = if elapsed < Duration::from_micros(50) {
                iters * 16
            } else {
                let scale = budget.as_secs_f64() / elapsed.as_secs_f64();
                ((iters as f64 * scale) as u64).max(iters + 1)
            };
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Measure `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // One setup per timed call: time only the routine.
        self.samples.clear();
        let budget = sample_budget();
        // Calibrate iterations per sample on the routine alone.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = t.elapsed();
            if elapsed >= budget / 2 || iters >= 1 << 20 {
                break;
            }
            iters = if elapsed < Duration::from_micros(50) {
                iters * 16
            } else {
                let scale = budget.as_secs_f64() / elapsed.as_secs_f64();
                ((iters as f64 * scale) as u64).max(iters + 1)
            };
        }
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<48} no samples collected");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let min = sorted[0];
    println!(
        "{name:<48} time: [median {:>10}  mean {:>10}  min {:>10}]  ({} samples)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min),
        sorted.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Defines a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with(" s"));
    }

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default().sample_size(3);
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
